"""Data staging: absorb bursts in staging-node memory, drain asynchronously.

The paper's I/O substrate (ADIOS) "provides a mature implementation of
*data staging*, a technique for leveraging additional compute nodes to
improve I/O performance" (§VI).  The model here is the standard burst
buffer: a write is absorbed at network speed into staging-node memory and
drained to the parallel filesystem in the background; the application
only blocks when the buffer cannot hold the burst.

This plugs into the checkpoint middleware as a drop-in
:class:`~repro.cluster.filesystem.ParallelFilesystem` replacement
(same ``write_time`` interface), so the staging ablation in
``bench_extensions.py`` is a one-line swap — exactly the reusability
story the paper tells about I/O middleware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive
from repro.cluster.filesystem import ParallelFilesystem


@dataclass
class StagingSpec:
    """Sizing of the staging area.

    ``ingest_bandwidth`` is what the application sees (node-local memory /
    interconnect speed); ``capacity_bytes`` is the total staging memory.
    """

    ingest_bandwidth: float = 5.0e11  # ~10x a congested PFS slice
    capacity_bytes: float = 2.0e12  # 2 TB of staging memory

    def __post_init__(self) -> None:
        check_positive("ingest_bandwidth", self.ingest_bandwidth)
        check_positive("capacity_bytes", self.capacity_bytes)


class StagingArea:
    """A burst buffer in front of a :class:`ParallelFilesystem`.

    The drain runs at whatever the backing filesystem delivers (including
    its stochastic load); buffered bytes drain continuously between
    writes.  ``write_time`` returns only the *application-visible* stall:
    ingest time plus any wait for buffer space.
    """

    def __init__(self, backing: ParallelFilesystem, spec: StagingSpec | None = None):
        self.backing = backing
        self.spec = spec or StagingSpec()
        self._buffered = 0.0
        self._last_drain = 0.0
        self.bytes_written = 0
        self.stall_log: list[tuple[float, int, float]] = []  # (time, bytes, stall s)

    @property
    def peak_bandwidth(self) -> float:
        """Application-visible bandwidth (middleware sizing estimates)."""
        return self.spec.ingest_bandwidth

    def buffered_bytes(self, now: float) -> float:
        """Bytes still waiting to drain at ``now`` (advances the drain)."""
        self._drain_until(now)
        return self._buffered

    def _drain_until(self, now: float) -> None:
        dt = max(0.0, now - self._last_drain)
        self._last_drain = now
        if dt <= 0 or self._buffered <= 0:
            return
        # Effective PFS bandwidth over the interval, at the interval start's
        # load (one load sample per drain window keeps this O(1)).
        load = self.backing.current_load(now)
        drained = (self.backing.peak_bandwidth / load) * dt
        self._buffered = max(0.0, self._buffered - drained)

    def write_time(self, nbytes: int, now: float) -> float:
        """Application-visible seconds to hand ``nbytes`` to staging.

        Ingest runs at staging speed; if the burst exceeds free buffer
        space the caller additionally waits for the drain to free room.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._drain_until(now)
        free = self.spec.capacity_bytes - self._buffered
        stall = 0.0
        overflow = nbytes - free
        if overflow > 0:
            # Wait for the backing store to free `overflow` bytes.
            load = self.backing.current_load(now)
            stall = overflow / (self.backing.peak_bandwidth / load)
            self._drain_until(now + stall)
        ingest = nbytes / self.spec.ingest_bandwidth
        self._buffered = min(self.spec.capacity_bytes, self._buffered + nbytes)
        self.bytes_written += nbytes
        self.backing.bytes_written += nbytes  # the data does land on the PFS
        total = stall + ingest
        self.stall_log.append((now, nbytes, total))
        return total

    def read_time(self, nbytes: int, now: float) -> float:
        """Reads bypass staging (restart reads come from the PFS)."""
        return self.backing.read_time(nbytes, now)

    def metadata_op_time(self, n_files: int, now: float) -> float:
        return self.backing.metadata_op_time(n_files, now)
