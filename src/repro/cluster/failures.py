"""Task failure injection.

The iRF-LOOP scenario (§II-B) calls out failed runs that must be manually
curated and resubmitted; the checkpoint scenario (§V-B) motivates
checkpoint frequency by the system's mean time to failure.  Both reduce to
the same primitive: given a task occupying ``nodes`` nodes for ``duration``
seconds, does it fail, and if so when?

Failures are exponential in accumulated node-seconds (a constant hazard
per node), the standard MTTF model.  A deterministic "no failures" mode is
``FailureModel(mttf=None)``.
"""

from __future__ import annotations

import math

from repro._util import as_generator, check_positive


class FailureModel:
    """Exponential (constant-hazard) per-node failure model.

    Parameters
    ----------
    mttf:
        Mean time to failure of a *single node*, in seconds.  ``None``
        disables failures entirely.
    seed:
        RNG seed.
    """

    def __init__(self, mttf: float | None = 3.0e6, seed=None):
        if mttf is not None:
            check_positive("mttf", mttf)
        self.mttf = mttf
        self._rng = as_generator(seed)

    def failure_probability(self, duration: float, nodes: int = 1) -> float:
        """P(at least one failure) over ``duration`` seconds on ``nodes`` nodes."""
        if self.mttf is None:
            return 0.0
        hazard = nodes / self.mttf
        return 1.0 - math.exp(-hazard * duration)

    def sample_failure_time(self, duration: float, nodes: int = 1) -> float | None:
        """Time-to-failure within ``[0, duration)``, or None if it survives."""
        if self.mttf is None:
            return None
        hazard = nodes / self.mttf
        t = float(self._rng.exponential(1.0 / hazard))
        return t if t < duration else None

    def expected_failures(self, duration: float, nodes: int = 1) -> float:
        """Expected failure count over the interval (Poisson mean)."""
        if self.mttf is None:
            return 0.0
        return nodes * duration / self.mttf
