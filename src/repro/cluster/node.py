"""Compute nodes and busy-interval accounting.

A :class:`Node` records the half-open ``[start, end)`` intervals during
which it executed work.  Figure 6 (the utilization timeline) and the
idle-fraction numbers behind Figure 7 are computed directly from these
intervals, so the recording lives with the node rather than in the
executors.

Nodes created through a :class:`~repro.cluster.cluster.SimulatedCluster`
additionally publish each transition as a ``node.busy`` / ``node.idle``
event on the cluster's bus, so utilization is also reconstructible from a
recorded event stream alone
(:meth:`~repro.cluster.trace.UtilizationTrace.from_events`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro._util import check_positive
from repro.observability import NODE_BUSY, NODE_IDLE


@dataclass
class Node:
    """One compute node in the simulated cluster.

    Parameters
    ----------
    index:
        Stable identifier within the pool.
    cores:
        Core count; tasks may declare core requirements (defaults model a
        whole-node schedule, the paper's iRF-LOOP placement).
    speed:
        Relative execution speed: a task's wall time on this node is
        ``nominal_duration / speed``.  Heterogeneous speeds model aging
        parts, thermal throttling, and OS jitter — a second straggler
        source on real machines beyond workload skew.

    A node may additionally carry a transient *slowdown* (a straggler
    fault injected for the duration of one attempt); the executors place
    work at :attr:`effective_speed`, which folds the slowdown in.
    """

    index: int
    cores: int = 42  # Summit nodes expose 42 usable cores
    speed: float = 1.0
    busy_intervals: list[tuple[float, float]] = field(default_factory=list)
    #: Optional event bus; busy/idle transitions are published when set.
    bus: object | None = field(default=None, repr=False, compare=False)
    #: Transient straggler divisor (1.0 = healthy); see :meth:`degrade`.
    slowdown: float = field(default=1.0, repr=False)
    _busy_since: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("speed", self.speed)
        check_positive("slowdown", self.slowdown)

    @property
    def busy(self) -> bool:
        return self._busy_since is not None

    @property
    def effective_speed(self) -> float:
        """Speed after any transient straggler degradation."""
        return self.speed / self.slowdown

    def degrade(self, factor: float) -> None:
        """Mark the node as a transient straggler (fault injection).

        ``factor`` >= 1 divides the node's speed until :meth:`restore`;
        the within-allocation engines call this for the span of one
        attempt when the fault injector strikes.
        """
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0, got {factor}")
        self.slowdown = float(factor)

    def restore(self) -> None:
        """Clear a transient straggler degradation (idempotent)."""
        self.slowdown = 1.0

    def mark_busy(self, now: float) -> None:
        """Record the start of an executing task (emits ``node.busy``)."""
        if self._busy_since is not None:
            raise RuntimeError(f"node {self.index} already busy since {self._busy_since}")
        self._busy_since = now
        if self.bus is not None:
            self.bus.emit(NODE_BUSY, time=now, node=self.index)

    def mark_idle(self, now: float) -> None:
        """Record the end of the currently executing task (emits ``node.idle``)."""
        if self._busy_since is None:
            raise RuntimeError(f"node {self.index} is not busy")
        if now < self._busy_since:
            raise ValueError(f"end {now} before start {self._busy_since}")
        self.busy_intervals.append((self._busy_since, now))
        self._busy_since = None
        if self.bus is not None:
            self.bus.emit(NODE_IDLE, time=now, node=self.index)

    def close(self, now: float) -> None:
        """Flush an in-flight interval at end of simulation (walltime kill)."""
        if self._busy_since is not None:
            self.mark_idle(now)

    def busy_time(self, horizon: float | None = None) -> float:
        """Total busy seconds, optionally clipped to ``[0, horizon)``."""
        total = 0.0
        for start, end in self.busy_intervals:
            if horizon is not None:
                start, end = min(start, horizon), min(end, horizon)
            total += max(0.0, end - start)
        return total


class NodePool:
    """A fixed set of nodes with free-list bookkeeping.

    Allocation hands out the lowest-index free nodes first, which makes
    placement deterministic and timelines easy to read.

    The free set is kept as a min-heap of indices plus a membership bitmap
    (array-based free-slot bookkeeping): ``acquire``/``release`` are
    O(log n) per node instead of the O(n log n) re-sort the previous list
    representation paid on every release, and double-release detection is
    an O(1) bitmap probe instead of an O(n) scan.
    """

    def __init__(self, count: int, cores: int = 42, speeds=None, bus=None):
        check_positive("count", count)
        if speeds is None:
            speeds = [1.0] * count
        speeds = list(speeds)
        if len(speeds) != count:
            raise ValueError(f"{len(speeds)} speeds for {count} nodes")
        self.nodes = [
            Node(index=i, cores=cores, speed=float(s), bus=bus)
            for i, s in enumerate(speeds)
        ]
        #: Nominal per-node speed factors as a dense array; the vectorized
        #: executors index this instead of touching Node objects per task.
        self.speed_array = np.asarray(speeds, dtype=np.float64)
        self._free_heap = list(range(count))  # min-heap: lowest index first
        self._is_free = bytearray([1]) * count

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def free_count(self) -> int:
        return len(self._free_heap)

    def acquire(self, n: int) -> list[Node]:
        """Take ``n`` free nodes (lowest indices first)."""
        if n > len(self._free_heap):
            raise RuntimeError(f"requested {n} nodes, only {len(self._free_heap)} free")
        taken = [heapq.heappop(self._free_heap) for _ in range(n)]
        for i in taken:
            self._is_free[i] = 0
        return [self.nodes[i] for i in taken]

    def release(self, nodes: list[Node]) -> None:
        """Return nodes to the free list."""
        for node in nodes:
            if self._is_free[node.index]:
                raise RuntimeError(f"node {node.index} released twice")
            self._is_free[node.index] = 1
            heapq.heappush(self._free_heap, node.index)
