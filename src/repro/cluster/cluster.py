"""The :class:`SimulatedCluster` façade.

Savanna executors and the checkpoint experiments talk to this object: it
owns one discrete-event :class:`~repro.cluster.engine.Simulator` plus the
node pool, batch scheduler, filesystem, and failure model, all seeded from
one root seed via independent child streams.

Every cluster also owns an :class:`~repro.observability.EventBus` clocked
by its simulator; the scheduler, nodes, and the Savanna executors running
on the cluster emit their lifecycle events there (attach a
:class:`~repro.observability.TraceRecorder` to ``cluster.bus`` to capture
a run — see ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import spawn_children, check_positive
from repro.cluster.engine import Simulator
from repro.cluster.failures import FailureModel
from repro.cluster.filesystem import FilesystemLoadModel, ParallelFilesystem
from repro.cluster.node import NodePool
from repro.cluster.scheduler import BatchScheduler, QueueModel
from repro.observability import EventBus


@dataclass
class ClusterSpec:
    """Static description of the simulated machine.

    Defaults sketch a Summit-like system at the fidelity the experiments
    need: node count is set per-experiment; bandwidth and MTTF use
    leadership-class orders of magnitude.
    """

    nodes: int = 128
    cores_per_node: int = 42
    peak_bandwidth: float = 2.5e12  # bytes/s aggregate to the PFS
    node_mttf: float | None = 3.0e6  # ~35 node-days
    queue_median_wait: float = 300.0
    queue_sigma: float = 0.5
    fs_load: FilesystemLoadModel | None = field(default_factory=FilesystemLoadModel)
    #: Lognormal sigma of per-node speed factors (0 = homogeneous fleet).
    node_speed_sigma: float = 0.0

    def __post_init__(self) -> None:
        check_positive("nodes", self.nodes)
        check_positive("cores_per_node", self.cores_per_node)
        check_positive("peak_bandwidth", self.peak_bandwidth)
        if self.node_speed_sigma < 0:
            raise ValueError(
                f"node_speed_sigma must be >= 0, got {self.node_speed_sigma}"
            )


class SimulatedCluster:
    """One simulated machine instance (simulator + scheduler + FS + failures).

    Create a fresh instance per experiment run; the event clock starts at 0.

    Example
    -------
    >>> cluster = SimulatedCluster(ClusterSpec(nodes=4), seed=7)
    >>> cluster.pool.free_count
    4
    """

    def __init__(
        self,
        spec: ClusterSpec | None = None,
        seed=None,
        bus: EventBus | None = None,
        faults=None,
    ):
        self.spec = spec or ClusterSpec()
        #: Optional :class:`~repro.resilience.FaultInjector`; the Savanna
        #: within-allocation engines consult it at every task launch and
        #: emit ``task.fault_injected`` when it strikes.
        self.faults = faults
        rng_queue, rng_fs, rng_fail, rng_speed = spawn_children(seed, 4)
        self.sim = Simulator()
        self.bus = bus if bus is not None else EventBus(name="cluster")
        self.bus.clock = lambda: self.sim.now
        if self.spec.node_speed_sigma > 0:
            s = self.spec.node_speed_sigma
            # mean-1 lognormal: the fleet is slower/faster per node, not overall
            speeds = rng_speed.lognormal(
                mean=-0.5 * s * s, sigma=s, size=self.spec.nodes
            )
        else:
            speeds = None
        self.pool = NodePool(
            self.spec.nodes, cores=self.spec.cores_per_node, speeds=speeds, bus=self.bus
        )
        self.scheduler = BatchScheduler(
            self.sim,
            self.pool,
            QueueModel(median_wait=self.spec.queue_median_wait, sigma=self.spec.queue_sigma),
            seed=rng_queue,
            bus=self.bus,
        )
        self.filesystem = ParallelFilesystem(
            peak_bandwidth=self.spec.peak_bandwidth,
            load_model=self.spec.fs_load,
            seed=rng_fs,
        )
        self.failures = FailureModel(mttf=self.spec.node_mttf, seed=rng_fail)

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: float | None = None) -> float:
        """Advance the event loop (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until)
