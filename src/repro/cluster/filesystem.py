"""Parallel-filesystem model with time-correlated load.

The checkpoint experiments (Figures 3 and 4) hinge on one quantity: how
long a collective checkpoint write takes *right now*.  On the paper's
machine that depends on GPFS load from other tenants; here we model the
effective delivered bandwidth as

``bandwidth(t) = peak_bandwidth / load(t)``

where ``load(t) >= 1`` follows a mean-reverting AR(1) process in log space
(an Ornstein–Uhlenbeck discretization).  Mean reversion gives the
time-correlated "the filesystem is having a bad hour" behaviour that makes
run-to-run checkpoint counts vary (Figure 4) without being pure white
noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import as_generator, check_positive, check_nonnegative


@dataclass
class FilesystemLoadModel:
    """Mean-reverting stochastic load multiplier.

    ``log(load)`` follows an OU process with reversion rate ``theta``
    (1/seconds), stationary standard deviation ``sigma``, and mean
    ``log(mean_load)``.  ``load`` is clipped below at 1.0 — the filesystem
    never delivers more than its peak.
    """

    mean_load: float = 1.6
    sigma: float = 0.35
    theta: float = 1.0 / 600.0  # ~10-minute correlation time

    def __post_init__(self) -> None:
        check_positive("mean_load", self.mean_load)
        check_nonnegative("sigma", self.sigma)
        check_positive("theta", self.theta)


class ParallelFilesystem:
    """Simulated parallel filesystem shared by all jobs.

    Parameters
    ----------
    peak_bandwidth:
        Aggregate delivered write bandwidth with no contention, bytes/s.
        The default is Summit-era GPFS scale (2.5 TB/s).
    load_model:
        Stochastic contention model; ``None`` gives a constant-load FS
        (useful in unit tests).
    seed:
        RNG seed for the load process.
    """

    def __init__(
        self,
        peak_bandwidth: float = 2.5e12,
        load_model: FilesystemLoadModel | None = None,
        seed=None,
    ):
        check_positive("peak_bandwidth", peak_bandwidth)
        self.peak_bandwidth = peak_bandwidth
        self.load_model = load_model
        self._rng = as_generator(seed)
        self._log_load = 0.0 if load_model is None else math.log(load_model.mean_load)
        self._last_update = 0.0
        self.bytes_written = 0
        self.write_log: list[tuple[float, int, float]] = []  # (time, bytes, seconds)

    def current_load(self, now: float) -> float:
        """Advance the OU process to ``now`` and return the load multiplier."""
        if self.load_model is None:
            return 1.0
        dt = max(0.0, now - self._last_update)
        self._last_update = now
        if dt > 0:
            m = self.load_model
            mu = math.log(m.mean_load)
            decay = math.exp(-m.theta * dt)
            # Exact OU transition: conditional mean + conditional stddev.
            cond_sd = m.sigma * math.sqrt(max(0.0, 1.0 - decay * decay))
            self._log_load = (
                mu + (self._log_load - mu) * decay + cond_sd * self._rng.standard_normal()
            )
        return max(1.0, math.exp(self._log_load))

    def write_time(self, nbytes: int, now: float) -> float:
        """Seconds to write ``nbytes`` collectively, given load at ``now``."""
        check_nonnegative("nbytes", nbytes)
        load = self.current_load(now)
        seconds = nbytes / (self.peak_bandwidth / load)
        self.bytes_written += nbytes
        self.write_log.append((now, nbytes, seconds))
        return seconds

    def read_time(self, nbytes: int, now: float) -> float:
        """Seconds to read ``nbytes``; reads see the same contention."""
        check_nonnegative("nbytes", nbytes)
        load = self.current_load(now)
        return nbytes / (self.peak_bandwidth / load)

    def metadata_op_time(self, n_files: int, now: float) -> float:
        """Metadata cost of touching ``n_files`` files at once.

        Models the "too many files at once" bottleneck the GWAS paste
        workflow plans around: cost is superlinear past a knee.
        """
        check_nonnegative("n_files", n_files)
        load = self.current_load(now)
        base = 2e-4 * n_files  # 0.2 ms per open/close pair at zero load
        knee = 1000.0
        penalty = 0.0 if n_files <= knee else 5e-4 * (n_files - knee) ** 1.3
        return (base + penalty) * load
