"""Utilization traces — the data behind Figure 6.

Executors record task attempts; nodes record busy intervals.  This module
turns those into (a) per-node timelines suitable for plotting/printing and
(b) aggregate idle-fraction numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import Node


@dataclass
class TimelineRow:
    """Busy intervals for one node, clipped to the trace window."""

    node_index: int
    intervals: list[tuple[float, float]]

    def busy_time(self) -> float:
        return sum(e - s for s, e in self.intervals)


@dataclass
class UtilizationTrace:
    """Utilization of a set of nodes over a window ``[start, end)``."""

    start: float
    end: float
    rows: list[TimelineRow] = field(default_factory=list)

    @classmethod
    def from_nodes(cls, nodes: list[Node], start: float, end: float) -> "UtilizationTrace":
        if end <= start:
            raise ValueError(f"empty window: [{start}, {end})")
        rows = []
        for node in nodes:
            clipped = []
            for s, e in node.busy_intervals:
                s2, e2 = max(s, start), min(e, end)
                if e2 > s2:
                    clipped.append((s2, e2))
            rows.append(TimelineRow(node_index=node.index, intervals=clipped))
        return cls(start=start, end=end, rows=rows)

    @property
    def window(self) -> float:
        return self.end - self.start

    def utilization(self) -> float:
        """Mean fraction of node-time spent busy across the window."""
        if not self.rows:
            return 0.0
        total_busy = sum(row.busy_time() for row in self.rows)
        return total_busy / (self.window * len(self.rows))

    def idle_fraction(self) -> float:
        return 1.0 - self.utilization()

    def busy_nodes_series(self, samples: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Sampled series of (time, #busy nodes) — the Figure 6 curve.

        Computed by sweep-line over interval endpoints then sampled, so the
        step function is exact at sample points.
        """
        ts = np.linspace(self.start, self.end, samples, endpoint=False)
        counts = np.zeros(samples, dtype=int)
        for row in self.rows:
            for s, e in row.intervals:
                counts += (ts >= s) & (ts < e)
        return ts, counts

    def ascii_timeline(self, width: int = 72) -> str:
        """Render one line per node: ``#`` where busy, ``.`` where idle."""
        lines = []
        for row in sorted(self.rows, key=lambda r: r.node_index):
            cells = ["."] * width
            for s, e in row.intervals:
                lo = int((s - self.start) / self.window * width)
                hi = int(np.ceil((e - self.start) / self.window * width))
                for i in range(max(0, lo), min(width, hi)):
                    cells[i] = "#"
            lines.append(f"node {row.node_index:>3} |{''.join(cells)}|")
        return "\n".join(lines)
