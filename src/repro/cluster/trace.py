"""Utilization traces — the data behind Figure 6.

Nodes publish every busy/idle transition as ``node.busy`` /
``node.idle`` events on the cluster's bus (see
:mod:`repro.observability`); this module turns that single source of
truth into (a) per-node timelines suitable for plotting/printing and
(b) aggregate idle-fraction numbers.  Two constructors cover the two
vantage points:

- :meth:`UtilizationTrace.from_events` consumes a recorded event stream
  — the path a detached analysis takes (a trace JSON captured on one
  machine, inspected on another);
- :meth:`UtilizationTrace.from_nodes` reads the busy intervals the same
  transitions left on live :class:`~repro.cluster.node.Node` objects —
  the in-process convenience the executors and figure drivers use.

Both produce identical rows for the same run (asserted in
``tests/test_observability_integration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.node import Node
from repro.observability import NODE_BUSY, NODE_IDLE


def _clip(intervals, start: float, end: float) -> list[tuple[float, float]]:
    """Clip ``(s, e)`` intervals to ``[start, end)``, dropping empty ones."""
    clipped = []
    for s, e in intervals:
        s2, e2 = max(s, start), min(e, end)
        if e2 > s2:
            clipped.append((s2, e2))
    return clipped


@dataclass
class TimelineRow:
    """Busy intervals for one node, clipped to the trace window."""

    node_index: int
    intervals: list[tuple[float, float]]

    def busy_time(self) -> float:
        return sum(e - s for s, e in self.intervals)


@dataclass
class UtilizationTrace:
    """Utilization of a set of nodes over a window ``[start, end)``."""

    start: float
    end: float
    rows: list[TimelineRow] = field(default_factory=list)

    @classmethod
    def from_nodes(cls, nodes: list[Node], start: float, end: float) -> "UtilizationTrace":
        """Build a trace from live nodes' recorded busy intervals.

        The intervals are the on-node residue of the ``node.busy`` /
        ``node.idle`` events; prefer :meth:`from_events` when all you
        have is a captured stream.
        """
        if end <= start:
            raise ValueError(f"empty window: [{start}, {end})")
        rows = []
        for node in nodes:
            rows.append(
                TimelineRow(
                    node_index=node.index,
                    intervals=_clip(node.busy_intervals, start, end),
                )
            )
        return cls(start=start, end=end, rows=rows)

    @classmethod
    def from_events(cls, events, start: float, end: float) -> "UtilizationTrace":
        """Build a trace from recorded ``node.busy``/``node.idle`` events.

        ``events`` is any iterable of :class:`~repro.observability.Event`
        (other names are ignored, so a full campaign capture can be
        passed as-is).  A node still busy when the stream ends is counted
        busy through ``end`` — the same convention
        :meth:`Node.close <repro.cluster.node.Node.close>` applies at a
        walltime kill.
        """
        if end <= start:
            raise ValueError(f"empty window: [{start}, {end})")
        intervals: dict[int, list[tuple[float, float]]] = {}
        busy_since: dict[int, float] = {}
        for event in events:
            if event.name not in (NODE_BUSY, NODE_IDLE):
                continue
            node = event.fields["node"]
            intervals.setdefault(node, [])
            if event.name == NODE_BUSY:
                if node in busy_since:
                    raise ValueError(f"node {node} marked busy twice in stream")
                busy_since[node] = event.time
            else:
                since = busy_since.pop(node, None)
                if since is None:
                    raise ValueError(f"node {node} idle without matching busy")
                intervals[node].append((since, event.time))
        for node, since in busy_since.items():
            intervals[node].append((since, end))
        rows = [
            TimelineRow(node_index=node, intervals=_clip(ivals, start, end))
            for node, ivals in sorted(intervals.items())
        ]
        return cls(start=start, end=end, rows=rows)

    @property
    def window(self) -> float:
        return self.end - self.start

    def utilization(self) -> float:
        """Mean fraction of node-time spent busy across the window."""
        if not self.rows:
            return 0.0
        total_busy = sum(row.busy_time() for row in self.rows)
        return total_busy / (self.window * len(self.rows))

    def idle_fraction(self) -> float:
        return 1.0 - self.utilization()

    def busy_nodes_series(self, samples: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Sampled series of (time, #busy nodes) — the Figure 6 curve.

        Computed by sweep-line over interval endpoints then sampled, so the
        step function is exact at sample points.
        """
        ts = np.linspace(self.start, self.end, samples, endpoint=False)
        counts = np.zeros(samples, dtype=int)
        for row in self.rows:
            for s, e in row.intervals:
                counts += (ts >= s) & (ts < e)
        return ts, counts

    def ascii_timeline(self, width: int = 72) -> str:
        """Render one line per node: ``#`` where busy, ``.`` where idle."""
        lines = []
        for row in sorted(self.rows, key=lambda r: r.node_index):
            cells = ["."] * width
            for s, e in row.intervals:
                lo = int((s - self.start) / self.window * width)
                hi = int(np.ceil((e - self.start) / self.window * width))
                for i in range(max(0, lo), min(width, hi)):
                    cells[i] = "#"
            lines.append(f"node {row.node_index:>3} |{''.join(cells)}|")
        return "\n".join(lines)
