"""Tasks, task attempts, and batch allocations.

The unit of science work is a :class:`Task` — one iRF run, one paste
sub-job, one ensemble member.  A task carries its *nominal* duration; the
executor may perturb it (stragglers) and the failure model may abort it.
A :class:`TaskAttempt` records what actually happened to one placement of
a task, so resubmission (Savanna's partial-SweepGroup resume) is a new
attempt of the same task.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro._util import check_positive


class TaskState(enum.Enum):
    """Lifecycle of a task within a campaign execution."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"  # walltime expired while running


_task_ids = itertools.count()


@dataclass(slots=True)
class Task:
    """One schedulable unit of work.

    Slotted like :class:`TaskAttempt`: the simulator's hot loops read
    ``duration``/``state``/``attempts`` once or more per attempt.

    Parameters
    ----------
    name:
        Human-readable identity (e.g. ``"irf-feature-0413"``).
    duration:
        Nominal wall seconds of compute on one node.
    nodes:
        Nodes required simultaneously (1 for bag-of-tasks work; >1 models
        small MPI jobs inside an allocation).
    payload:
        Arbitrary campaign metadata (parameter values, run directory).
    """

    name: str
    duration: float
    nodes: int = 1
    payload: dict = field(default_factory=dict)
    task_id: int = field(default_factory=lambda: next(_task_ids))
    state: TaskState = TaskState.PENDING
    attempts: list["TaskAttempt"] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("duration", self.duration)
        check_positive("nodes", self.nodes)

    @property
    def done(self) -> bool:
        return self.state is TaskState.DONE


@dataclass(slots=True)
class TaskAttempt:
    """One placement of a task onto nodes: start/end times and outcome.

    Slotted: campaigns create one of these per attempt on the simulator
    hot path, so construction and field access are worth keeping lean.
    """

    task: Task
    node_indices: list[int]
    start: float
    end: float | None = None
    outcome: TaskState = TaskState.RUNNING

    @property
    def elapsed(self) -> float:
        if self.end is None:
            raise RuntimeError("attempt still running")
        return self.end - self.start


@dataclass
class AllocationRequest:
    """A batch-job request: ``nodes`` for ``walltime`` seconds."""

    nodes: int
    walltime: float
    name: str = "job"

    def __post_init__(self) -> None:
        check_positive("nodes", self.nodes)
        check_positive("walltime", self.walltime)


@dataclass
class Allocation:
    """A granted batch job: concrete nodes plus its deadline."""

    request: AllocationRequest
    nodes: list  # list[Node]
    start: float

    @property
    def deadline(self) -> float:
        """Absolute simulation time at which the scheduler kills the job."""
        return self.start + self.request.walltime

    def remaining(self, now: float) -> float:
        """Wall seconds left before the walltime kill."""
        return max(0.0, self.deadline - now)
