#!/usr/bin/env python
"""Kill + resume smoke test for the real-execution drive path (CI).

Drives a ``local-processes`` campaign in a child process, SIGKILLs the
child once the checkpoint journal records at least two runs DONE, then
resumes in-process with ``resume=True`` and asserts that

- the journal's pending set is exactly what the resumed drive re-queues,
- the resumed drive skips exactly the runs already recorded DONE, and
- the campaign directory ends with every run DONE.

This is the write-ahead-journal contract under the harshest failure a
driver can suffer (SIGKILL: no handlers, no atexit, possibly a torn
final journal line).

Usage: ``python tools/smoke_realexec_resume.py`` (parent; creates a temp
campaign root) — ``--child <root>`` is the internal child entry point.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

N_RUNS = 8
SLEEP_PER_RUN = 0.3
KILL_AFTER_DONE = 2
TIMEOUT = 120.0


def build_manifest():
    from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep

    camp = Campaign(
        "smoke-realexec",
        app=AppSpec("slow-square"),
        objective="kill+resume smoke",
    )
    camp.sweep_group("g", nodes=1, walltime=600.0).add(
        Sweep([RangeParameter("x", 0, N_RUNS)])
    )
    return camp.to_manifest()


def slow_square(params):
    time.sleep(SLEEP_PER_RUN)
    return params["x"] ** 2


def child(root: str) -> None:
    from repro.savanna import execute_manifest

    execute_manifest(
        build_manifest(),
        backend="local-processes",
        app_fn=slow_square,
        directory=root,
        max_workers=1,  # serial completion -> deterministic journal growth
    )


def count_done(journal: Path) -> int:
    if not journal.exists():
        return 0
    done = set()
    for line in journal.read_text().splitlines():
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn in-progress write
        if entry.get("status") == "done":
            done.add(entry["run"])
    return len(done)


def parent() -> int:
    root = Path(tempfile.mkdtemp(prefix="smoke-realexec-"))
    journal = root / "smoke-realexec" / ".cheetah" / "journal.jsonl"

    proc = subprocess.Popen(
        [sys.executable, __file__, "--child", str(root)],
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    deadline = time.monotonic() + TIMEOUT
    try:
        while count_done(journal) < KILL_AFTER_DONE:
            if proc.poll() is not None:
                print("FAIL: child finished before it could be killed "
                      f"(rc={proc.returncode}) — raise N_RUNS/SLEEP_PER_RUN")
                return 1
            if time.monotonic() > deadline:
                print("FAIL: journal never reached "
                      f"{KILL_AFTER_DONE} done entries within {TIMEOUT}s")
                return 1
            time.sleep(0.05)
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait()
    print(f"killed child driver (pid {proc.pid}) mid-campaign")

    from repro.cheetah.directory import RunStatus, resolve_campaign_dir
    from repro.observability import GROUP_RESUMED
    from repro.resilience.checkpoint import CampaignCheckpoint
    from repro.savanna import execute_manifest
    from repro.savanna.realexec import wall_clock_bus

    directory = resolve_campaign_dir(root / "smoke-realexec")
    checkpoint = CampaignCheckpoint(directory)
    done_before = checkpoint.completed()
    pending_before = checkpoint.pending()
    print(f"journal after kill: {len(done_before)} done, "
          f"{len(pending_before)} pending")
    assert done_before, "no run recorded DONE before the kill"
    assert pending_before, "kill landed after the campaign drained"
    assert len(done_before) + len(pending_before) == N_RUNS

    bus = wall_clock_bus()
    events = []
    bus.subscribe(events.append)
    result = execute_manifest(
        build_manifest(),
        backend="local-processes",
        app_fn=slow_square,
        directory=directory,
        resume=True,
        max_workers=2,
        bus=bus,
    )

    executed = set(result.results)
    assert executed == pending_before, (
        f"resume must re-queue exactly the pending set: "
        f"ran {sorted(executed)}, journal said {sorted(pending_before)}"
    )
    resumed = [e for e in events if e.name == GROUP_RESUMED]
    assert resumed and resumed[0].fields["skipped"] == len(done_before)
    assert result.all_done, result.summary()
    status = resolve_campaign_dir(directory.root).read_status()
    assert all(s is RunStatus.DONE for s in status.values())
    print(f"resume re-queued exactly the {len(pending_before)} pending runs; "
          f"campaign complete ({N_RUNS}/{N_RUNS} done)")
    return 0


def main() -> int:
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        child(sys.argv[2])
        return 0
    return parent()


if __name__ == "__main__":
    sys.exit(main())
