#!/usr/bin/env python
"""Campaign-store smoke test (CI): drive -> migrate -> identical answers.

Exercises the durable-result-store contract end to end on a real
campaign:

1. drive a ``local-threads`` campaign with ``json_results=True`` so the
   end point holds *both* persistence forms (per-run ``result.json``
   files and ``.cheetah/store.sqlite``);
2. build the pre-store answer: read every result file, assemble the
   in-memory ``CampaignCatalog``, answer ``best`` / ``rank`` / Pareto /
   impact;
3. migrate the directory into a *fresh* store db with
   ``python -m repro.store migrate --db ...`` (the CLI, not the API) and
   assert the SQL catalog returns identical answers;
4. delete the result files, assert ``directory.read_run_result`` still
   answers from the in-place store, and re-export the files with
   ``python -m repro.store export``;
5. spot-check the ``status`` / ``info`` / ``query`` subcommands.

Usage: ``python tools/smoke_store.py`` (creates a temp campaign root).
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

N_X = 6


def loss_app(params):
    mode_bump = 0.25 if params["mode"] == "b" else 0.0
    return {
        "loss": float((params["x"] * 7919) % 100) / 10.0 + mode_bump,
        "cost": float((params["x"] * 104729) % 50),
    }


def build_manifest():
    from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter

    camp = Campaign(
        "smoke-store", app=AppSpec("loss-app"), objective="minimize loss"
    )
    camp.sweep_group("g", nodes=1, walltime=600.0).add(
        Sweep([SweepParameter("x", range(N_X)), SweepParameter("mode", ["a", "b"])])
    )
    return camp.to_manifest()


def run_cli(*args: str) -> subprocess.CompletedProcess:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.store", *args],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert proc.returncode == 0, (
        f"repro.store {' '.join(args)} failed ({proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )
    return proc


def answers_of(catalog) -> dict:
    from repro.cheetah.objectives import Direction, Objective

    loss = Objective("loss", metric="loss", direction=Direction.MINIMIZE)
    cost = Objective("cost", metric="cost", direction=Direction.MINIMIZE)
    return {
        "best": catalog.best(loss).run_id,
        "rank": [r.run_id for r in catalog.rank(loss)],
        "pareto": sorted(r.run_id for r in catalog.pareto_front([loss, cost])),
        "impact": round(catalog.parameter_impact("mode", "loss")["effect"], 12),
    }


def main() -> int:
    from repro.cheetah.catalog import CampaignCatalog
    from repro.cheetah.directory import CampaignDirectory
    from repro.savanna import execute_manifest
    from repro.store import CampaignStore, metrics_from_value

    manifest = build_manifest()
    with tempfile.TemporaryDirectory(prefix="smoke-store-") as td:
        root = Path(td)

        # 1. real drive, both persistence forms
        result = execute_manifest(
            manifest,
            backend="local-threads",
            directory=root,
            app_fn=loss_app,
            json_results=True,
            max_workers=4,
        )
        assert len(result.completed) == len(manifest.runs), "drive incomplete"
        campaign_dir = root / manifest.campaign
        directory = CampaignDirectory.open(campaign_dir)
        assert directory.store_path().exists(), "drive did not materialize the store"

        # 2. the pre-store answer from the files
        mem = CampaignCatalog(manifest.campaign)
        for run in manifest.runs:
            payload = directory.read_run_result(run.run_id)
            mem.add(run.run_id, dict(run.parameters), metrics_from_value(payload["value"]))
        expected = answers_of(mem)
        print(f"[smoke-store] file-based answers: best={expected['best']}")

        # 3. CLI migration into a fresh db -> identical catalog answers
        fresh_db = root / "migrated.sqlite"
        out = run_cli("migrate", str(campaign_dir), "--db", str(fresh_db))
        print(f"[smoke-store] {out.stdout.strip()}")
        with CampaignStore(fresh_db) as store:
            migrated = answers_of(store.catalog(manifest.campaign))
        assert migrated == expected, (
            f"migrated catalog diverged:\n  files: {expected}\n  store: {migrated}"
        )
        print("[smoke-store] migrated SQL catalog answers identical")

        # 4. files deleted -> reads fall back to the in-place store; export restores
        for run in manifest.runs:
            (directory.run_dir(run.run_id) / "result.json").unlink()
        payload = directory.read_run_result(manifest.runs[0].run_id)
        assert payload is not None and payload["status"] == "done", (
            "store fallback read failed after deleting result.json files"
        )
        run_cli("export", str(campaign_dir))
        assert (directory.run_dir(manifest.runs[0].run_id) / "result.json").exists()
        print("[smoke-store] store fallback read + export round trip ok")

        # 5. CLI query surface
        best = run_cli("query", str(campaign_dir), "best", "--metric", "loss")
        assert expected["best"] in best.stdout, best.stdout
        run_cli("query", str(campaign_dir), "rank", "--metric", "loss", "--k", "3")
        run_cli(
            "query", str(campaign_dir), "pareto",
            "--objective", "loss:minimize", "--objective", "cost:minimize",
        )
        run_cli("query", str(campaign_dir), "impact", "--metric", "loss")
        status = run_cli("status", str(campaign_dir))
        assert f"{len(manifest.runs)} runs" in status.stdout, status.stdout
        info = run_cli("info", str(campaign_dir))
        assert manifest.campaign in info.stdout, info.stdout
        print("[smoke-store] CLI query/status/info ok")

    print("[smoke-store] PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
