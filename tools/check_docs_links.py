#!/usr/bin/env python
"""Doc-rot checker: do the docs' links and module paths still resolve?

Scans ``README.md`` and ``docs/*.md`` for three kinds of claims and
verifies each against the working tree / the importable package:

1. Markdown links ``[text](target)`` — relative targets must exist
   (``http(s)://``, ``mailto:`` and pure-anchor targets are skipped;
   an anchor on a relative target is stripped before checking).
2. Backticked file paths (inline code ending in ``.md`` or ``.py``) —
   must exist relative to the doc, the repo root, or anywhere in the
   tree (basename match covers prose like ```` `_alloc.py` ````).
3. Dotted module paths — inline code starting with ``repro.``, plus
   ``import``/``from`` statements and architecture-table rows inside
   fenced code blocks.  Each must resolve: the longest importable
   module prefix is imported and the remaining segments looked up with
   ``getattr`` (so ``repro.cheetah.Campaign.to_manifest`` works).
4. Fenced ``python`` blocks — every one must *compile*
   (``compile(src, doc, "exec")``), so a doc example cannot rot into a
   SyntaxError.  Examples with deliberate ellipses should use a
   non-``python`` fence language (or none).
5. The rule catalog in ``docs/lint.md`` — the set of ``FAIRnnn`` ids in
   its table must equal the live registry (what ``python -m repro.lint
   --list-rules`` prints), so adding or retiring a rule without
   regenerating the doc fails here.

Run directly (exits 1 and lists problems if any)::

    PYTHONPATH=src python tools/check_docs_links.py

or under pytest via ``tests/test_docs_links.py``, which keeps the docs
honest in tier-1.
"""

from __future__ import annotations

import ast
import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

INLINE_CODE = re.compile(r"`([^`\n]+)`")
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"^```(\w*)\s*$")
DOTTED_PATH = re.compile(r"^repro(?:\.\w+)+$")
FENCE_MODULE_ROW = re.compile(r"^(repro(?:\.\w+)+)\b")
IMPORT_LINE = re.compile(r"^\s*(?:from\s+(repro[\w.]*)\s+import\s+(.+)|import\s+(repro[\w.]*))")


def doc_files() -> list[Path]:
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    return [REPO_ROOT / "README.md", *docs]


def resolve_module_path(dotted: str) -> bool:
    """True if ``dotted`` names an importable module, or an attribute
    chain hanging off one (longest importable prefix + getattr walk)."""
    parts = dotted.split(".")
    for i in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:i]))
        except ImportError:
            continue
        for attr in parts[i:]:
            if not hasattr(obj, attr):
                return False
            obj = getattr(obj, attr)
        return True
    return False


def _normalize_code_span(span: str) -> str:
    """Reduce an inline-code span to a checkable dotted path, if it is one:
    drop a call suffix (``Campaign.to_manifest(bus=...)``) and anything
    after whitespace."""
    head = span.split("(", 1)[0].split()
    return head[0].rstrip(".") if head else ""


def _file_path_exists(target: str, doc: Path) -> bool:
    if (doc.parent / target).exists() or (REPO_ROOT / target).exists():
        return True
    name = Path(target).name
    return any(REPO_ROOT.glob(f"**/{name}"))


def _split_fences(text: str) -> tuple[str, list[tuple[str, str]]]:
    """Separate prose from fenced code; returns (prose, [(lang, body)])."""
    prose_lines: list[str] = []
    fences: list[tuple[str, str]] = []
    lang = None
    body: list[str] = []
    for line in text.splitlines():
        m = FENCE.match(line)
        if m and lang is None:
            lang, body = m.group(1), []
        elif line.strip() == "```" and lang is not None:
            fences.append((lang, "\n".join(body)))
            lang = None
        elif lang is not None:
            body.append(line)
        else:
            prose_lines.append(line)
    return "\n".join(prose_lines), fences


def _fence_module_claims(lang: str, body: str):
    """Dotted paths asserted inside one fenced block: import statements
    (parsed with ast when the block is valid Python) and architecture-
    table rows that lead with a ``repro.*`` path."""
    claims: list[str] = []
    parsed = None
    if lang == "python":
        try:
            parsed = ast.parse(body)
        except SyntaxError:
            parsed = None
    if parsed is not None:
        for node in ast.walk(parsed):
            if isinstance(node, ast.Import):
                claims += [a.name for a in node.names if a.name.startswith("repro")]
            elif isinstance(node, ast.ImportFrom) and (node.module or "").startswith("repro"):
                claims += [f"{node.module}.{a.name}" for a in node.names]
    else:
        for line in body.splitlines():
            row = FENCE_MODULE_ROW.match(line)
            if row:
                claims.append(row.group(1))
            imp = IMPORT_LINE.match(line)
            if imp:
                if imp.group(3):
                    claims.append(imp.group(3))
                else:
                    names = [n.strip() for n in imp.group(2).split(",")]
                    claims += [
                        f"{imp.group(1)}.{n}" for n in names if n.isidentifier()
                    ]
    return claims


def _compile_error(body: str, filename: str) -> str | None:
    """Compile one fenced ``python`` block; return a short error string
    on SyntaxError (line numbers are fence-relative), None when fine."""
    try:
        compile(body, filename, "exec")
    except SyntaxError as exc:
        return f"{exc.msg} (fence line {exc.lineno})"
    return None


def check_doc(doc: Path) -> list[str]:
    rel = doc.relative_to(REPO_ROOT)
    problems: list[str] = []
    prose, fences = _split_fences(doc.read_text())

    for target in MARKDOWN_LINK.findall(prose):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path_part = target.split("#", 1)[0]
        if path_part and not _file_path_exists(path_part, doc):
            problems.append(f"{rel}: broken link target {target!r}")

    for span in INLINE_CODE.findall(prose):
        candidate = _normalize_code_span(span)
        if DOTTED_PATH.match(candidate):
            if not resolve_module_path(candidate):
                problems.append(f"{rel}: module path `{candidate}` does not resolve")
        elif candidate.endswith((".md", ".py")):
            if not _file_path_exists(candidate, doc):
                problems.append(f"{rel}: file `{candidate}` not found")

    for lang, body in fences:
        if lang == "python":
            err = _compile_error(body, str(rel))
            if err:
                problems.append(f"{rel}: ```python block does not compile: {err}")
        for claim in _fence_module_claims(lang, body):
            if not resolve_module_path(claim):
                problems.append(f"{rel}: module path `{claim}` (in ```{lang} block) does not resolve")

    return problems


RULE_TABLE_ROW = re.compile(r"^\|\s*(FAIR\d{3})\s*\|", re.MULTILINE)


def check_rule_catalog() -> list[str]:
    """The ``docs/lint.md`` rule table vs. the registered catalog."""
    doc = REPO_ROOT / "docs" / "lint.md"
    documented = set(RULE_TABLE_ROW.findall(doc.read_text()))
    from repro.lint.rules import REGISTRY

    registered = set(REGISTRY.ids())
    problems = []
    rel = doc.relative_to(REPO_ROOT)
    for rule_id in sorted(registered - documented):
        problems.append(
            f"{rel}: rule {rule_id} is registered (see --list-rules) but "
            "missing from the catalog table — regenerate it"
        )
    for rule_id in sorted(documented - registered):
        problems.append(
            f"{rel}: rule {rule_id} is documented but not registered — "
            "stale catalog table"
        )
    return problems


def collect_problems() -> list[str]:
    problems: list[str] = []
    for doc in doc_files():
        problems.extend(check_doc(doc))
    problems.extend(check_rule_catalog())
    return problems


def main() -> int:
    problems = collect_problems()
    for p in problems:
        print(p)
    checked = len(doc_files())
    if problems:
        print(f"{len(problems)} problem(s) across {checked} docs")
        return 1
    print(f"ok: {checked} docs — links, module paths, and python examples all check out")
    return 0


if __name__ == "__main__":
    sys.exit(main())
