#!/usr/bin/env python
"""CI smoke: three concurrent campaigns through one ``CampaignService``.

Submits three campaigns (three tenants) on the ``local-threads`` backend
to a two-worker service with live telemetry enabled, cancels one
mid-flight, and asserts:

- every submission reaches a terminal state (DONE, DONE, CANCELLED);
- the two surviving campaigns completed every run;
- the cancelled one actually started and was cut short (some runs
  ``interrupted``), proving cancellation reached a *running* drive;
- the monitoring bus interleaved ``service.*`` lifecycle instants with
  forwarded per-submission execution events;
- a mid-flight scrape of ``/metrics`` serves parseable Prometheus text
  with non-zero per-tenant counters, and ``/status`` is valid JSON;
- the final ``/status`` document reconciles exactly with what the
  submission handles report (per-tenant ``tasks_done`` == completed
  runs), and each submission carries a distinct trace id.

Run from the repo root (CI's ``service-smoke`` job does)::

    PYTHONPATH=src python tools/smoke_service.py
"""

from __future__ import annotations

import asyncio
import json
import re
import sys
import time
import urllib.request

from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep
from repro.savanna import CampaignService, SubmissionState

#: metric_name{optional labels} value  — Prometheus text format 0.0.4.
PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+]?[0-9.eE+naif]+$"
)


def app(params):
    time.sleep(params.get("sleep", 0.01))
    return params["x"] * 2


def make_manifest(name: str, runs: int, sleep: float):
    campaign = Campaign(name, app=AppSpec("smoke-app"))
    group = campaign.sweep_group("g", nodes=2, walltime=600.0)
    group.add(Sweep([RangeParameter("x", 0, runs - 1)]))
    for run in (manifest := campaign.to_manifest()).runs:
        run.parameters["sleep"] = sleep
    return manifest


def scrape(address: str, route: str) -> tuple[str, str]:
    with urllib.request.urlopen(address + route, timeout=5) as response:
        return response.read().decode(), response.headers.get("Content-Type", "")


async def drive() -> int:
    events = []
    service = CampaignService(max_workers=2, max_queue_depth=8,
                              serve_telemetry=True)
    service.bus.subscribe(events.append)

    async with service:
        address = service.telemetry_server.address
        fast_a = service.submit(make_manifest("smoke-a", 8, 0.01),
                                backend="local-threads", app_fn=app,
                                tenant="lab-a")
        slow = service.submit(make_manifest("smoke-slow", 40, 0.1),
                              backend="local-threads", app_fn=app,
                              tenant="lab-b")
        fast_b = service.submit(make_manifest("smoke-b", 8, 0.01),
                                backend="local-threads", app_fn=app,
                                tenant="lab-c")

        # Let the slow campaign get genuinely underway, then scrape the
        # telemetry plane *while work is in flight* and cut the slow one.
        await asyncio.sleep(0.5)
        metrics_text, metrics_type = await asyncio.to_thread(
            scrape, address, "/metrics")
        mid_status = json.loads((await asyncio.to_thread(
            scrape, address, "/status"))[0])
        slow.cancel()
        await asyncio.gather(fast_a.wait(), slow.wait(), fast_b.wait())
        final_status = json.loads((await asyncio.to_thread(
            scrape, address, "/status"))[0])

    failures: list[str] = []

    def check(cond: bool, what: str) -> None:
        (print(f"  ok: {what}") if cond else failures.append(what))

    check(fast_a.status() is SubmissionState.DONE, "fast-a DONE")
    check(fast_b.status() is SubmissionState.DONE, "fast-b DONE")
    check(slow.status() is SubmissionState.CANCELLED, "slow CANCELLED")
    for handle, label in ((fast_a, "fast-a"), (fast_b, "fast-b")):
        result = handle.result["g"]
        check(result.all_done, f"{label} completed every run")
    slow_statuses = list(slow.result["g"].statuses().values())
    check("interrupted" in slow_statuses,
          f"cancel cut a running campaign ({slow_statuses.count('interrupted')} interrupted)")

    names = [e.name for e in events]
    check(names.count("service.submitted") == 3, "3 service.submitted events")
    check(names.count("service.finished") == 2, "2 service.finished events")
    check(names.count("service.cancelled") == 1, "1 service.cancelled event")
    forwarded = [e for e in events if e.fields.get("submission")]
    check(len({e.fields["submission"] for e in forwarded}) == 3,
          "execution events forwarded from all 3 submissions")

    # --- live telemetry plane -------------------------------------------
    check(metrics_type.startswith("text/plain; version=0.0.4"),
          "/metrics content type is Prometheus text 0.0.4")
    payload_lines = [line for line in metrics_text.splitlines()
                     if line and not line.startswith("#")]
    bad = [line for line in payload_lines if not PROM_LINE.match(line)]
    check(payload_lines and not bad,
          f"every /metrics line parses ({len(payload_lines)} samples)"
          if not bad else f"unparseable /metrics lines: {bad[:3]}")
    submitted = {
        tenant: stats["submitted"]
        for tenant, stats in mid_status["tenants"].items()
    }
    check(all(submitted.get(t, 0) > 0 for t in ("lab-a", "lab-b", "lab-c")),
          f"mid-flight per-tenant counters non-zero {submitted}")
    check(any(f'tenant="lab-b"' in line and line.split()[-1] != "0"
              for line in payload_lines),
          "per-tenant series with non-zero value exposed mid-flight")

    # final /status reconciles with what the handles themselves report
    tenants = final_status["tenants"]
    for handle, tenant in ((fast_a, "lab-a"), (fast_b, "lab-c")):
        done = sum(1 for s in handle.result["g"].statuses().values()
                   if s == "done")
        check(tenants[tenant]["tasks_done"] == done,
              f"{tenant} tasks_done == {done} completed runs")
        check(tenants[tenant]["finished"] == 1, f"{tenant} finished == 1")
    slow_done = slow_statuses.count("done")
    check(tenants["lab-b"]["tasks_done"] == slow_done,
          f"lab-b tasks_done == {slow_done} runs done before cancel")
    check(tenants["lab-b"]["cancelled_running"] == 1,
          "lab-b cancelled while running")
    check(final_status["service"]["active"] == 0
          and final_status["service"]["queued"] == 0,
          "nothing left in flight in final /status")

    trace_ids = {h.trace_id for h in (fast_a, slow, fast_b)}
    check(len(trace_ids) == 3 and all(trace_ids), "3 distinct trace ids")
    for handle, label in ((fast_a, "fast-a"), (slow, "slow"), (fast_b, "fast-b")):
        tagged = [e for e in forwarded
                  if e.fields.get("trace_id") == handle.trace_id]
        check(len(tagged) > 0, f"{label} events carry its trace id")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"service smoke ok: 3 submissions, {len(events)} bus events, "
          f"{len(payload_lines)} metric samples")
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(drive()))
