#!/usr/bin/env python
"""CI smoke: three concurrent campaigns through one ``CampaignService``.

Submits three campaigns on the ``local-threads`` backend to a
two-worker service, cancels one mid-flight, and asserts:

- every submission reaches a terminal state (DONE, DONE, CANCELLED);
- the two surviving campaigns completed every run;
- the cancelled one actually started and was cut short (some runs
  ``interrupted``), proving cancellation reached a *running* drive;
- the monitoring bus interleaved ``service.*`` lifecycle instants with
  forwarded per-submission execution events.

Run from the repo root (CI's ``service-smoke`` job does)::

    PYTHONPATH=src python tools/smoke_service.py
"""

from __future__ import annotations

import asyncio
import sys
import time

from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep
from repro.savanna import CampaignService, SubmissionState


def app(params):
    time.sleep(params.get("sleep", 0.01))
    return params["x"] * 2


def make_manifest(name: str, runs: int, sleep: float):
    campaign = Campaign(name, app=AppSpec("smoke-app"))
    group = campaign.sweep_group("g", nodes=2, walltime=600.0)
    group.add(Sweep([RangeParameter("x", 0, runs - 1)]))
    for run in (manifest := campaign.to_manifest()).runs:
        run.parameters["sleep"] = sleep
    return manifest


async def drive() -> int:
    events = []
    service = CampaignService(max_workers=2, max_queue_depth=8)
    service.bus.subscribe(events.append)

    async with service:
        fast_a = service.submit(make_manifest("smoke-a", 8, 0.01),
                                backend="local-threads", app_fn=app,
                                tenant="lab-a")
        slow = service.submit(make_manifest("smoke-slow", 40, 0.1),
                              backend="local-threads", app_fn=app,
                              tenant="lab-b")
        fast_b = service.submit(make_manifest("smoke-b", 8, 0.01),
                                backend="local-threads", app_fn=app,
                                tenant="lab-a")

        # Let the slow campaign get genuinely underway, then cut it.
        await asyncio.sleep(0.5)
        slow.cancel()
        await asyncio.gather(fast_a.wait(), slow.wait(), fast_b.wait())

    failures: list[str] = []

    def check(cond: bool, what: str) -> None:
        (print(f"  ok: {what}") if cond else failures.append(what))

    check(fast_a.status() is SubmissionState.DONE, "fast-a DONE")
    check(fast_b.status() is SubmissionState.DONE, "fast-b DONE")
    check(slow.status() is SubmissionState.CANCELLED, "slow CANCELLED")
    for handle, label in ((fast_a, "fast-a"), (fast_b, "fast-b")):
        result = handle.result["g"]
        check(result.all_done, f"{label} completed every run")
    slow_statuses = list(slow.result["g"].statuses().values())
    check("interrupted" in slow_statuses,
          f"cancel cut a running campaign ({slow_statuses.count('interrupted')} interrupted)")

    names = [e.name for e in events]
    check(names.count("service.submitted") == 3, "3 service.submitted events")
    check(names.count("service.finished") == 2, "2 service.finished events")
    check(names.count("service.cancelled") == 1, "1 service.cancelled event")
    forwarded = [e for e in events if e.fields.get("submission")]
    check(len({e.fields["submission"] for e in forwarded}) == 3,
          "execution events forwarded from all 3 submissions")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"service smoke ok: 3 submissions, {len(events)} bus events")
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(drive()))
