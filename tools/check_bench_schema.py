#!/usr/bin/env python
"""Validate committed benchmark artifacts against their declared schemas.

Every machine-readable benchmark artifact in this repo is a
``benchmarks/results/BENCH_*.json`` document carrying a top-level
``"schema"`` identifier (e.g. ``"repro.bench.simcore/v1"``).  CI runs
this script so that a hand edit, a merge accident, or a bench-script
change that silently alters the artifact shape fails loudly instead of
poisoning the perf-trajectory gate downstream.

Usage::

    python tools/check_bench_schema.py            # validate all BENCH_*.json
    python tools/check_bench_schema.py FILE...    # validate specific files

Exit status is non-zero if any file fails validation.  Adding a new
benchmark artifact family means registering its schema id and validator
in ``VALIDATORS`` below — unknown schema ids are an error by design.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"


class SchemaError(Exception):
    """A document does not conform to its declared schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _positive_number(doc: dict, key: str, where: str) -> None:
    value = doc.get(key)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{where}: {key!r} must be a number, got {value!r}",
    )
    _require(value > 0, f"{where}: {key!r} must be positive, got {value!r}")


def _check_simcore_mode(name: str, entry: dict) -> None:
    where = f"modes[{name!r}]"
    _require(isinstance(entry, dict), f"{where}: must be an object")
    _require(entry.get("mode") == name, f"{where}: 'mode' must equal the key")
    for key in ("tasks_per_sec", "event_tasks_per_sec", "best_seconds",
                "speedup_vs_event", "speedup_vs_prechange"):
        _positive_number(entry, key, where)
    _require(
        isinstance(entry.get("attempts"), int) and entry["attempts"] > 0,
        f"{where}: 'attempts' must be a positive integer",
    )
    _require(
        isinstance(entry.get("rounds"), int) and entry["rounds"] > 0,
        f"{where}: 'rounds' must be a positive integer",
    )
    _require(
        isinstance(entry.get("peak_rss_bytes"), int) and entry["peak_rss_bytes"] > 0,
        f"{where}: 'peak_rss_bytes' must be a positive integer",
    )
    _require(
        isinstance(entry.get("protocol"), str) and entry["protocol"],
        f"{where}: 'protocol' must be a non-empty string",
    )

    workload = entry.get("workload")
    _require(isinstance(workload, dict), f"{where}: 'workload' must be an object")
    for key in ("n_tasks", "nodes"):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"{where}.workload: {key!r} must be a positive integer",
        )
    _require(
        isinstance(workload.get("name"), str) and workload["name"],
        f"{where}.workload: 'name' must be a non-empty string",
    )
    _require("seed" in workload, f"{where}.workload: missing 'seed'")

    prechange = entry.get("prechange")
    _require(isinstance(prechange, dict), f"{where}: 'prechange' must be an object")
    _require(
        isinstance(prechange.get("commit"), str) and prechange["commit"],
        f"{where}.prechange: 'commit' must be a non-empty string",
    )
    _positive_number(prechange, "tasks_per_sec", f"{where}.prechange")

    fold = entry.get("report_fold")
    _require(isinstance(fold, dict), f"{where}: 'report_fold' must be an object")
    for key in ("events", "campaigns"):
        _require(
            isinstance(fold.get(key), int) and fold[key] > 0,
            f"{where}.report_fold: {key!r} must be a positive integer",
        )
    for key in ("seconds", "events_per_sec"):
        _positive_number(fold, key, f"{where}.report_fold")
    trace = fold.get("trace")
    _require(
        isinstance(trace, str) and trace,
        f"{where}.report_fold: 'trace' must be a non-empty string",
    )
    _require(
        (RESULTS / trace).is_file(),
        f"{where}.report_fold: trace fixture {trace!r} is not committed "
        f"under benchmarks/results/",
    )


def check_simcore_v1(doc: dict) -> None:
    modes = doc.get("modes")
    _require(
        isinstance(modes, dict) and modes,
        "'modes' must be a non-empty object",
    )
    known = {"quick", "full"}
    unknown = set(modes) - known
    _require(not unknown, f"unknown mode entries: {sorted(unknown)}")
    for name, entry in sorted(modes.items()):
        _check_simcore_mode(name, entry)


def _check_lint_mode(name: str, entry: dict) -> None:
    where = f"modes[{name!r}]"
    _require(isinstance(entry, dict), f"{where}: must be an object")
    _require(entry.get("mode") == name, f"{where}: 'mode' must equal the key")
    for key in (
        "cold_seconds",
        "warm_seconds",
        "touched_seconds",
        "campaigns_per_sec_cold",
        "campaigns_per_sec_warm",
        "speedup_cold_over_warm",
        "speedup_cold_over_touched",
    ):
        _positive_number(entry, key, where)
    _require(
        isinstance(entry.get("rounds"), int) and entry["rounds"] > 0,
        f"{where}: 'rounds' must be a positive integer",
    )
    _require(
        isinstance(entry.get("protocol"), str) and entry["protocol"],
        f"{where}: 'protocol' must be a non-empty string",
    )
    workload = entry.get("workload")
    _require(isinstance(workload, dict), f"{where}: 'workload' must be an object")
    for key in ("n_campaigns", "sources_per_campaign"):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"{where}.workload: {key!r} must be a positive integer",
        )
    _require(
        isinstance(workload.get("name"), str) and workload["name"],
        f"{where}.workload: 'name' must be a non-empty string",
    )
    # The acceptance bar for the incremental cache: an unchanged catalog
    # re-lints at least an order of magnitude faster than a cold one.
    _require(
        entry["speedup_cold_over_warm"] >= 10.0,
        f"{where}: 'speedup_cold_over_warm' is "
        f"{entry['speedup_cold_over_warm']:.1f}, below the 10x acceptance bar",
    )


def check_lint_v1(doc: dict) -> None:
    modes = doc.get("modes")
    _require(
        isinstance(modes, dict) and modes,
        "'modes' must be a non-empty object",
    )
    known = {"quick", "full"}
    unknown = set(modes) - known
    _require(not unknown, f"unknown mode entries: {sorted(unknown)}")
    for name, entry in sorted(modes.items()):
        _check_lint_mode(name, entry)


def _check_telemetry_mode(name: str, entry: dict) -> None:
    where = f"modes[{name!r}]"
    _require(isinstance(entry, dict), f"{where}: must be an object")
    _require(entry.get("mode") == name, f"{where}: 'mode' must equal the key")
    for key in ("off_seconds", "on_seconds"):
        _positive_number(entry, key, where)
    overhead = entry.get("overhead_pct")
    _require(
        isinstance(overhead, (int, float)) and not isinstance(overhead, bool),
        f"{where}: 'overhead_pct' must be a number, got {overhead!r}",
    )
    _require(
        isinstance(entry.get("rounds"), int) and entry["rounds"] > 0,
        f"{where}: 'rounds' must be a positive integer",
    )
    _require(
        isinstance(entry.get("protocol"), str) and entry["protocol"],
        f"{where}: 'protocol' must be a non-empty string",
    )
    workload = entry.get("workload")
    _require(isinstance(workload, dict), f"{where}: 'workload' must be an object")
    for key in ("n_campaigns", "runs_per_campaign", "tenants"):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"{where}.workload: {key!r} must be a positive integer",
        )
    _require(
        isinstance(workload.get("name"), str) and workload["name"],
        f"{where}.workload: 'name' must be a non-empty string",
    )
    # Evidence the plane actually ran during the 'on' configuration —
    # a zero here means the measurement compared off against off.
    telemetry = entry.get("telemetry")
    _require(isinstance(telemetry, dict), f"{where}: 'telemetry' must be an object")
    for key in ("events", "log_lines", "worker_samples", "scrape_bytes"):
        _require(
            isinstance(telemetry.get(key), int) and telemetry[key] > 0,
            f"{where}.telemetry: {key!r} must be a positive integer",
        )
    # The acceptance bar from docs/telemetry.md: the whole plane (sampler
    # + exposition + logs + profiler) stays under 5% end-to-end overhead.
    # Negative values pass — that is noise saying the plane is free.
    _require(
        overhead < 5.0,
        f"{where}: 'overhead_pct' is {overhead:.2f}, at or above the "
        f"5% acceptance bar",
    )


def check_telemetry_v1(doc: dict) -> None:
    modes = doc.get("modes")
    _require(
        isinstance(modes, dict) and modes,
        "'modes' must be a non-empty object",
    )
    known = {"quick", "full"}
    unknown = set(modes) - known
    _require(not unknown, f"unknown mode entries: {sorted(unknown)}")
    for name, entry in sorted(modes.items()):
        _check_telemetry_mode(name, entry)


def _check_store_tier(where: str, tier: dict) -> None:
    _require(isinstance(tier, dict), f"{where}: must be an object")
    _require(
        isinstance(tier.get("runs"), int) and tier["runs"] > 0,
        f"{where}: 'runs' must be a positive integer",
    )
    for key in (
        "files_ingest_seconds",
        "files_runs_per_sec",
        "store_ingest_seconds",
        "store_runs_per_sec",
        "speedup_ingest",
        "store_query_seconds",
    ):
        _positive_number(tier, key, where)
    for key in ("files_extrapolated", "queries_match", "pareto_in_query_set"):
        _require(
            isinstance(tier.get(key), bool),
            f"{where}: {key!r} must be a boolean",
        )
    _require(
        tier["queries_match"] is True,
        f"{where}: 'queries_match' must be true — the SQL catalog and the "
        f"in-memory catalog disagreed",
    )
    if not tier["files_extrapolated"]:
        _positive_number(tier, "files_query_seconds", where)
        _positive_number(tier, "speedup_query", where)
    # The acceptance bar: bulk SQL ingestion beats per-file persistence
    # by at least 5x from the 10k-run tier up.
    if tier["runs"] >= 10_000:
        _require(
            tier["speedup_ingest"] >= 5.0,
            f"{where}: 'speedup_ingest' is {tier['speedup_ingest']:.1f} at "
            f"{tier['runs']} runs, below the 5x acceptance bar",
        )


def _check_store_mode(name: str, entry: dict) -> None:
    where = f"modes[{name!r}]"
    _require(isinstance(entry, dict), f"{where}: must be an object")
    _require(entry.get("mode") == name, f"{where}: 'mode' must equal the key")
    _require(
        isinstance(entry.get("rounds"), int) and entry["rounds"] > 0,
        f"{where}: 'rounds' must be a positive integer",
    )
    _require(
        isinstance(entry.get("protocol"), str) and entry["protocol"],
        f"{where}: 'protocol' must be a non-empty string",
    )
    workload = entry.get("workload")
    _require(isinstance(workload, dict), f"{where}: 'workload' must be an object")
    _require(
        isinstance(workload.get("name"), str) and workload["name"],
        f"{where}.workload: 'name' must be a non-empty string",
    )
    for key in ("params_per_run", "metrics_per_run"):
        _require(
            isinstance(workload.get(key), int) and workload[key] > 0,
            f"{where}.workload: {key!r} must be a positive integer",
        )
    tiers = entry.get("tiers")
    _require(isinstance(tiers, list) and tiers, f"{where}: 'tiers' must be a non-empty list")
    for i, tier in enumerate(tiers):
        _check_store_tier(f"{where}.tiers[{i}]", tier)
    if name == "full":
        _require(
            any(t.get("runs", 0) >= 10_000 for t in tiers),
            f"{where}: the full mode must include a >=10k-run tier",
        )


def check_store_v1(doc: dict) -> None:
    modes = doc.get("modes")
    _require(
        isinstance(modes, dict) and modes,
        "'modes' must be a non-empty object",
    )
    known = {"quick", "full"}
    unknown = set(modes) - known
    _require(not unknown, f"unknown mode entries: {sorted(unknown)}")
    for name, entry in sorted(modes.items()):
        _check_store_mode(name, entry)


#: Registered schema id -> validator.  Unknown ids fail validation.
VALIDATORS = {
    "repro.bench.simcore/v1": check_simcore_v1,
    "repro.bench.lint/v1": check_lint_v1,
    "repro.bench.telemetry/v1": check_telemetry_v1,
    "repro.bench.store/v1": check_store_v1,
}


def check_file(path: Path) -> list[str]:
    """Return a list of problems with *path* (empty if it validates)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"not readable JSON: {exc}"]
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    schema = doc.get("schema")
    if not isinstance(schema, str) or not schema:
        return ["missing top-level 'schema' identifier"]
    validator = VALIDATORS.get(schema)
    if validator is None:
        return [
            f"unregistered schema id {schema!r} — register a validator in "
            f"tools/check_bench_schema.py"
        ]
    try:
        validator(doc)
    except SchemaError as exc:
        return [str(exc)]
    return []


def main(argv: list[str]) -> int:
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        paths = sorted(RESULTS.glob("BENCH_*.json"))
        if not paths:
            print(f"error: no BENCH_*.json found under {RESULTS}", file=sys.stderr)
            return 1
    failures = 0
    for path in paths:
        problems = check_file(path)
        rel = path.relative_to(REPO) if path.is_relative_to(REPO) else path
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL {rel}: {problem}")
        else:
            schema = json.loads(path.read_text())["schema"]
            print(f"ok   {rel} ({schema})")
    if failures:
        print(f"{failures} of {len(paths)} benchmark artifact(s) failed validation")
        return 1
    print(f"all {len(paths)} benchmark artifact(s) conform to their schemas")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
