"""Shared fixtures for the fairflow test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, SimulatedCluster


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster():
    """A 4-node deterministic-queue cluster with failures disabled."""
    spec = ClusterSpec(
        nodes=4,
        queue_sigma=0.0,
        queue_median_wait=10.0,
        node_mttf=None,
        fs_load=None,
    )
    return SimulatedCluster(spec, seed=7)


def make_cluster(nodes=4, mttf=None, queue_wait=10.0, seed=7):
    """Parameterizable cluster factory for executor tests."""
    spec = ClusterSpec(
        nodes=nodes,
        queue_sigma=0.0,
        queue_median_wait=queue_wait,
        node_mttf=mttf,
        fs_load=None,
    )
    return SimulatedCluster(spec, seed=seed)
