"""Tests for the iRF workflow module: campaign builder, manual effort,
reuse scenario, plus the brute-force split-search oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.irf.workflow import (
    ManualEffortEstimate,
    build_irf_campaign,
    irf_reuse_scenario,
    manual_effort_comparison,
)


class TestCampaignBuilder:
    def test_one_run_per_feature(self):
        campaign = build_irf_campaign(50, nodes=10, walltime=3600.0)
        manifest = campaign.to_manifest()
        assert len(manifest) == 50
        assert manifest.group_meta("features")["nodes"] == 10
        assert [r.parameters["feature"] for r in manifest.runs] == list(range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_irf_campaign(0)


class TestManualEffort:
    def test_cheetah_dramatically_cheaper(self):
        original, cheetah = manual_effort_comparison(1606)
        assert original.total_minutes > 10 * cheetah.total_minutes

    def test_original_effort_grows_with_campaign_size(self):
        small, _ = manual_effort_comparison(100)
        large, _ = manual_effort_comparison(3000)
        assert large.total_minutes > small.total_minutes

    def test_cheetah_effort_nearly_flat(self):
        _, small = manual_effort_comparison(100)
        _, large = manual_effort_comparison(3000)
        assert large.total_minutes < small.total_minutes + 60

    def test_total_is_sum_of_parts(self):
        estimate = ManualEffortEstimate("w", 10, 20, 30, 40)
        assert estimate.total_minutes == 100

    def test_explicit_allocations_respected(self):
        original, cheetah = manual_effort_comparison(100, expected_allocations=5)
        assert cheetah.resubmission_minutes == 4.0


class TestReuseScenario:
    def test_baseline_pays_everything(self):
        from repro.gauges import GaugeProfile, score

        scenario = irf_reuse_scenario()
        report = score(GaugeProfile.baseline(), scenario)
        assert report.manual_minutes == scenario.total_minutes()

    def test_modeled_customizability_removes_scripting_steps(self):
        from repro.gauges import GaugeProfile, score
        from repro.gauges.levels import CustomizabilityTier, Gauge

        profile = GaugeProfile.baseline().with_tier(
            Gauge.SOFTWARE_CUSTOMIZABILITY, CustomizabilityTier.MODELED
        )
        report = score(profile, irf_reuse_scenario())
        automated = {s.name for s in report.automated_steps}
        assert any("submit scripts" in name for name in automated)
        assert report.manual_minutes < irf_reuse_scenario().total_minutes()


# ---------------------------------------------------------------------------
# Oracle test: the vectorized split search against brute force.


def _brute_force_best_split(X, y, idx, features, min_leaf):
    """Reference implementation: try every threshold explicitly."""
    ysub = y[idx]
    parent_sse = float(((ysub - ysub.mean()) ** 2).sum())
    if parent_sse <= 0:
        return None
    best = None
    for f in features:
        vals = X[idx, f]
        for threshold in np.unique(vals)[:-1]:
            left = ysub[vals <= threshold]
            right = ysub[vals > threshold]
            if len(left) < min_leaf or len(right) < min_leaf:
                continue
            sse = float(((left - left.mean()) ** 2).sum()) + float(
                ((right - right.mean()) ** 2).sum()
            )
            if best is None or sse < best[2] - 1e-9:
                best = (int(f), float(threshold), sse, parent_sse - sse)
    return best


@settings(deadline=None, max_examples=40)
@given(
    n=st.integers(4, 25),
    m=st.integers(1, 4),
    min_leaf=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_vectorized_split_matches_brute_force(n, m, min_leaf, seed):
    """Property: the O(n log n) split search finds a split with exactly the
    brute-force optimal SSE (thresholds may differ when ties exist)."""
    from repro.apps.irf.tree import _best_split

    rng = np.random.default_rng(seed)
    X = rng.integers(0, 5, size=(n, m)).astype(float)  # ties likely
    y = rng.normal(size=n)
    idx = np.arange(n)
    features = list(range(m))
    fast = _best_split(X, y, idx, features, min_leaf)
    slow = _brute_force_best_split(X, y, idx, features, min_leaf)
    if slow is None:
        assert fast is None
        return
    assert fast is not None
    assert fast[2] == pytest.approx(slow[2], rel=1e-9, abs=1e-9)
    # and the returned threshold actually induces a valid partition
    f, threshold, _sse, decrease = fast
    left = (X[idx, f] <= threshold).sum()
    assert min_leaf <= left <= n - min_leaf
    assert decrease >= -1e-9
