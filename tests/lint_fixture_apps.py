"""Importable fixture ``app_fn``s for the FAIR5xx fire/silent suite.

Each pair below is the smallest function that violates exactly one
concurrency-safety rule, next to the idiomatic rewrite that stays
silent.  They live in a real module (not a test body) because
``lint_app_fn`` resolves a callable through its module source — exactly
how user app functions reach the drive/service gate.  Nothing here is
ever executed by the lint tests.
"""

from __future__ import annotations

import random
import threading
import time
import zlib

import numpy as np

#: Module state the bad fixtures race on.
RESULTS: dict = {}
TOTAL = 0.0


def clean(params):
    """A wholly well-behaved worker: pure, picklable, path-free."""
    return params["x"] ** 2


# -- FAIR501 ----------------------------------------------------------------


def mutates_global(params):
    global TOTAL
    TOTAL += params["x"]
    return TOTAL


def mutates_module_dict(params):
    RESULTS[params["run_id"]] = params["x"]
    return len(RESULTS)


# -- FAIR502 ----------------------------------------------------------------


def unseeded(params):
    return random.random() + np.random.rand()


def seeded(params):
    seed = zlib.crc32(repr(sorted(params.items())).encode("utf-8"))
    random.seed(seed)
    rng = np.random.default_rng(seed)
    return rng.random()


# -- FAIR503 ----------------------------------------------------------------


def make_closure_app():
    cache: dict = {}

    def app(params):
        cache[params["x"]] = True
        return params["x"]

    return app


# -- FAIR504 ----------------------------------------------------------------


def constant_path(params):
    with open("shared_results.txt", "a") as fh:
        fh.write(str(params["x"]))
    return 0


def run_relative_path(params):
    with open(params["out_path"], "w") as fh:
        fh.write("ok")
    return 0


# -- FAIR505 ----------------------------------------------------------------


def spawns_threads(params):
    worker = threading.Thread(target=time.sleep, args=(0,))
    worker.start()
    worker.join()
    return 0


# -- FAIR506 ----------------------------------------------------------------


async def blocking_callback(event):
    time.sleep(0.01)
    return event


async def friendly_callback(event):
    return event


# -- interprocedural: the violation lives in a reachable helper -------------


def _noisy_helper(scale):
    return random.gauss(0.0, scale)


def calls_noisy_helper(params):
    return _noisy_helper(params["sigma"])
