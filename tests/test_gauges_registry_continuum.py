"""Tests for the component registry and reusability trajectories."""

import pytest

from repro.gauges.continuum import ReusabilityTrajectory
from repro.gauges.debt import builtin_scenarios
from repro.gauges.levels import AccessTier, CustomizabilityTier, Gauge, GranularityTier, SchemaTier
from repro.gauges.model import (
    ComponentKind,
    GaugeProfile,
    SoftwareMetadata,
    WorkflowComponent,
)
from repro.gauges.registry import ComponentRegistry


def component(name, kind=ComponentKind.UNKNOWN, template=None, exposed=(), model=None):
    return WorkflowComponent(
        name=name,
        software=SoftwareMetadata(
            kind=kind,
            config_template=template,
            exposed_variables=tuple(exposed),
            generation_model=model,
        ),
    )


class TestRegistry:
    def test_register_returns_assessment(self):
        reg = ComponentRegistry()
        a = reg.register(component("c1", kind=ComponentKind.EXECUTABLE))
        assert a.profile.tier(Gauge.SOFTWARE_GRANULARITY) is GranularityTier.COMPONENT
        assert "c1" in reg and len(reg) == 1

    def test_reregister_updates(self):
        reg = ComponentRegistry()
        reg.register(component("c1"))
        reg.register(component("c1", kind=ComponentKind.EXECUTABLE))
        assert len(reg) == 1
        assert (
            reg.assessment("c1").profile.tier(Gauge.SOFTWARE_GRANULARITY)
            is GranularityTier.COMPONENT
        )

    def test_below_tier_query(self):
        reg = ComponentRegistry()
        reg.register(component("black-box"))
        reg.register(component("configured", kind=ComponentKind.EXECUTABLE, template="t"))
        below = reg.below_tier(Gauge.SOFTWARE_GRANULARITY, GranularityTier.CONFIGURED)
        assert below == ["black-box"]

    def test_debt_ranking_worst_first(self):
        reg = ComponentRegistry()
        reg.register(component("bad"))
        reg.register(
            component(
                "better",
                kind=ComponentKind.EXECUTABLE,
                template="t",
                exposed=("x",),
                model={"m": 1},
            )
        )
        ranked = reg.debt_ranking(builtin_scenarios()["new-machine"])
        assert ranked[0][0] == "bad"
        assert ranked[0][1] > ranked[1][1]

    def test_cheapest_advance_suggests_biggest_saving(self):
        reg = ComponentRegistry()
        reg.register(component("bad"))
        rows = reg.cheapest_advance(builtin_scenarios()["new-machine"])
        assert rows
        name, gauge, tier, saved = rows[0]
        assert name == "bad"
        assert saved > 0
        # applying the suggestion must actually save that much
        from repro.gauges.debt import score

        profile = reg.assessment("bad").profile
        base = score(profile, builtin_scenarios()["new-machine"]).manual_minutes
        raised = profile.with_tier(gauge, tier)
        after = score(raised, builtin_scenarios()["new-machine"]).manual_minutes
        assert base - after == saved

    def test_matrix_shape(self):
        reg = ComponentRegistry()
        reg.register(component("a"))
        reg.register(component("b"))
        matrix = reg.matrix()
        assert [name for name, _v in matrix] == ["a", "b"]
        assert all(len(v) == 6 for _n, v in matrix)

    def test_missing_lookup_raises(self):
        with pytest.raises(KeyError):
            ComponentRegistry().get("ghost")


class TestTrajectory:
    def test_record_and_current(self):
        t = ReusabilityTrajectory("wf")
        t.record("v0", GaugeProfile.baseline())
        p1 = GaugeProfile.baseline().advance(Gauge.DATA_ACCESS, AccessTier.PROTOCOL)
        t.record("v1", p1)
        assert len(t) == 2
        assert t.current().profile == p1

    def test_duplicate_labels_rejected(self):
        t = ReusabilityTrajectory("wf")
        t.record("v0", GaugeProfile.baseline())
        with pytest.raises(ValueError, match="duplicate snapshot label"):
            t.record("v0", GaugeProfile.baseline())

    def test_empty_current_raises(self):
        with pytest.raises(RuntimeError):
            ReusabilityTrajectory("wf").current()

    def test_monotone_progression(self):
        t = ReusabilityTrajectory("wf")
        p = GaugeProfile.baseline()
        t.record("v0", p)
        p = p.advance(Gauge.DATA_SCHEMA, SchemaTier.OPAQUE)
        t.record("v1", p)
        p = p.advance(Gauge.DATA_SCHEMA, SchemaTier.DECLARED)
        t.record("v2", p)
        assert t.is_monotone()
        assert len(t.advances()) == 2
        assert t.regressions() == []

    def test_regression_detected(self):
        t = ReusabilityTrajectory("wf")
        high = GaugeProfile.baseline().advance(
            Gauge.SOFTWARE_CUSTOMIZABILITY, CustomizabilityTier.MODELED
        )
        t.record("v0", high)
        t.record("v1", GaugeProfile.baseline())
        assert not t.is_monotone()
        regs = t.regressions()
        assert len(regs) == 1
        assert regs[0][2] is Gauge.SOFTWARE_CUSTOMIZABILITY

    def test_debt_trend_decreases_with_progress(self):
        scenario = builtin_scenarios()["new-dataset"]
        t = ReusabilityTrajectory("wf")
        p = GaugeProfile.baseline()
        t.record("v0", p)
        p = p.advance(Gauge.DATA_ACCESS, AccessTier.INTERFACE)
        t.record("v1", p)
        trend = t.debt_trend(scenario)
        assert trend[0][1] > trend[1][1]
