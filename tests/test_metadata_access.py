"""Tests for data-access descriptors."""

from repro.metadata.access import (
    AccessInterface,
    AccessProtocol,
    DataAccessDescriptor,
    QueryCapability,
)


class TestTierLadder:
    def test_unknown_is_tier_zero(self):
        assert DataAccessDescriptor().tier_index() == 0

    def test_protocol_is_tier_one(self):
        d = DataAccessDescriptor(protocol=AccessProtocol.POSIX_FILE)
        assert d.tier_index() == 1

    def test_interface_is_tier_two(self):
        d = DataAccessDescriptor(
            protocol=AccessProtocol.POSIX_FILE,
            interface=AccessInterface.DELIMITED_TEXT,
        )
        assert d.tier_index() == 2

    def test_query_is_tier_three(self):
        d = DataAccessDescriptor(
            protocol=AccessProtocol.DATABASE,
            interface=AccessInterface.SQL,
            query=QueryCapability.DECLARATIVE,
        )
        assert d.tier_index() == 3

    def test_interface_without_protocol_stays_tier_zero(self):
        """The ladder is strictly ordered: you can't know the library
        interface of data you can't reach."""
        d = DataAccessDescriptor(interface=AccessInterface.JSON)
        assert d.tier_index() == 0


class TestDescribe:
    def test_describe_mentions_all_known_parts(self):
        d = DataAccessDescriptor(
            protocol=AccessProtocol.MESSAGE_QUEUE,
            interface=AccessInterface.RAW_BYTES,
            query=QueryCapability.LINEAR,
            location="tcp://host:5555",
        )
        text = d.describe()
        assert "message-queue" in text
        assert "raw-bytes" in text
        assert "query=linear" in text
        assert "tcp://host:5555" in text

    def test_describe_minimal(self):
        assert DataAccessDescriptor().describe() == "unknown"

    def test_frozen(self):
        import dataclasses

        import pytest

        d = DataAccessDescriptor()
        with pytest.raises(dataclasses.FrozenInstanceError):
            d.protocol = AccessProtocol.POSIX_FILE
