"""Tests for selection policies."""

import pytest

from repro.dataflow.channels import DataItem
from repro.dataflow.policies import (
    DirectSelection,
    ForwardAll,
    SampleEveryK,
    SlidingWindowCount,
    SlidingWindowTime,
)


def items(n, t0=0.0, dt=1.0):
    return [DataItem(payload=i, timestamp=t0 + i * dt) for i in range(n)]


class TestForwardAll:
    def test_forwards_each_item(self):
        p = ForwardAll()
        for item in items(5):
            assert p.admit(item) == [item]

    def test_flush_empty(self):
        assert ForwardAll().flush() == []


class TestSlidingWindowCount:
    def test_tumbling_default_stride(self):
        p = SlidingWindowCount(3)
        out = [p.admit(i) for i in items(7)]
        released = [len(o) for o in out]
        assert released == [0, 0, 3, 0, 0, 3, 0]

    def test_overlapping_windows(self):
        p = SlidingWindowCount(4, stride=2)
        releases = [p.admit(i) for i in items(8)]
        sizes = [len(r) for r in releases]
        assert sizes == [0, 0, 0, 4, 0, 4, 0, 4]
        # second window overlaps first by size - stride = 2 items
        w1, w2 = p.windows[0], p.windows[1]
        assert w1[2:] == w2[:2]

    def test_flush_releases_partial_window(self):
        p = SlidingWindowCount(4)
        for i in items(2):
            p.admit(i)
        leftover = p.flush()
        assert [i.payload for i in leftover] == [0, 1]

    def test_flush_no_duplicate_of_complete_window(self):
        p = SlidingWindowCount(2)
        for i in items(2):
            p.admit(i)
        assert p.flush() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowCount(0)
        with pytest.raises(ValueError):
            SlidingWindowCount(2, stride=0)


class TestSlidingWindowTime:
    def test_keeps_only_span(self):
        p = SlidingWindowTime(2.0)
        outs = [p.admit(i) for i in items(5)]  # timestamps 0..4
        # at t=4 the window [2, 4] holds items 2,3,4
        assert [i.payload for i in outs[-1]] == [2, 3, 4]

    def test_every_admit_releases_window(self):
        p = SlidingWindowTime(10.0)
        outs = [p.admit(i) for i in items(3)]
        assert [len(o) for o in outs] == [1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowTime(0)


class TestDirectSelection:
    def test_predicate_filters(self):
        p = DirectSelection(lambda it: it.payload % 2 == 0)
        outs = [len(p.admit(i)) for i in items(6)]
        assert outs == [1, 0, 1, 0, 1, 0]

    def test_select_from_queue_one_shot(self):
        p = DirectSelection(lambda it: False)  # forward nothing live
        for i in items(10):
            p.admit(i)
        picked = p.select_from_queue(lambda it: it.payload >= 8)
        assert [i.payload for i in picked] == [8, 9]

    def test_buffer_bounded(self):
        p = DirectSelection(lambda it: False, keep_buffer=4)
        for i in items(10):
            p.admit(i)
        assert len(p.select_from_queue(lambda it: True)) == 4


class TestSampleEveryK:
    def test_decimation(self):
        p = SampleEveryK(3)
        outs = [len(p.admit(i)) for i in items(9)]
        assert outs == [0, 0, 1, 0, 0, 1, 0, 0, 1]

    def test_k_one_forwards_all(self):
        p = SampleEveryK(1)
        assert all(len(p.admit(i)) == 1 for i in items(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleEveryK(0)
