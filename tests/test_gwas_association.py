"""Tests for the GWAS association scan."""

import numpy as np
import pytest

from repro.apps.gwas.association import GwasScanResult, gwas_scan, recovery_rate
from repro.apps.irf.datasets import synthetic_gwas


class TestScan:
    def test_recovers_planted_causal_snps(self):
        data = synthetic_gwas(
            n_samples=600, n_snps=200, n_causal=5, heritability=0.8, seed=1
        )
        result = gwas_scan(data.genotypes, data.phenotype)
        assert recovery_rate(result, data.causal_snps) >= 0.8

    def test_null_data_controls_false_positives(self):
        """With no genetic signal, Bonferroni keeps discoveries near zero."""
        rng = np.random.default_rng(2)
        G = rng.binomial(2, 0.3, size=(400, 300))
        y = rng.standard_normal(400)
        result = gwas_scan(G, y)
        assert len(result.significant(alpha=0.05)) <= 1

    def test_effect_direction_and_magnitude(self):
        rng = np.random.default_rng(3)
        G = rng.binomial(2, 0.4, size=(2000, 10)).astype(float)
        y = 1.5 * G[:, 4] + 0.3 * rng.standard_normal(2000)
        result = gwas_scan(G, y)
        assert result.betas[4] == pytest.approx(1.5, abs=0.1)
        assert np.argmin(result.p_values) == 4

    def test_monomorphic_snp_neutral(self):
        rng = np.random.default_rng(4)
        G = rng.binomial(2, 0.3, size=(100, 5)).astype(float)
        G[:, 2] = 1.0  # monomorphic
        y = rng.standard_normal(100)
        result = gwas_scan(G, y)
        assert result.betas[2] == 0.0
        assert result.p_values[2] == 1.0

    def test_p_values_in_range(self):
        data = synthetic_gwas(n_samples=150, n_snps=60, n_causal=3, seed=5)
        result = gwas_scan(data.genotypes, data.phenotype)
        assert np.all((result.p_values >= 0) & (result.p_values <= 1))
        assert np.all(np.isfinite(result.betas))

    def test_p_value_uniformity_under_null(self):
        """Null p-values should be roughly uniform — mean near 0.5."""
        rng = np.random.default_rng(6)
        G = rng.binomial(2, 0.25, size=(500, 400))
        y = rng.standard_normal(500)
        result = gwas_scan(G, y)
        assert 0.42 < result.p_values.mean() < 0.58


class TestCovariates:
    def test_confounder_adjustment(self):
        """A SNP correlated with the trait only through a covariate must
        lose significance once the covariate is adjusted for."""
        rng = np.random.default_rng(7)
        n = 800
        ancestry = rng.standard_normal(n)
        # SNP frequency depends on ancestry; trait depends on ancestry only.
        p = 1 / (1 + np.exp(-ancestry))
        snp = rng.binomial(2, np.clip(0.5 * p, 0.05, 0.95))
        G = np.column_stack([snp, rng.binomial(2, 0.3, size=n)]).astype(float)
        y = 2.0 * ancestry + 0.5 * rng.standard_normal(n)

        unadjusted = gwas_scan(G, y)
        adjusted = gwas_scan(G, y, covariates=ancestry.reshape(-1, 1))
        assert unadjusted.p_values[0] < 1e-6  # confounded hit
        assert adjusted.p_values[0] > 1e-3  # attenuated after adjustment

    def test_dof_accounts_for_covariates(self):
        rng = np.random.default_rng(8)
        G = rng.binomial(2, 0.3, size=(50, 5)).astype(float)
        y = rng.standard_normal(50)
        C = rng.standard_normal((50, 3))
        result = gwas_scan(G, y, covariates=C)
        assert result.dof == 50 - 2 - 3


class TestValidation:
    def test_shape_errors(self):
        with pytest.raises(ValueError, match="2-D"):
            gwas_scan(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError, match="phenotype shape"):
            gwas_scan(np.zeros((5, 2)), np.zeros(4))

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="not enough samples"):
            gwas_scan(np.zeros((2, 3)), np.zeros(2))

    def test_top_ranked_by_p(self):
        data = synthetic_gwas(n_samples=300, n_snps=50, n_causal=3, heritability=0.9, seed=9)
        result = gwas_scan(data.genotypes, data.phenotype)
        top = result.top(5)
        ps = [p for _i, _b, p in top]
        assert ps == sorted(ps)

    def test_recovery_rate_empty_truth(self):
        result = GwasScanResult(
            betas=np.zeros(3), t_stats=np.zeros(3), p_values=np.ones(3), dof=10
        )
        assert recovery_rate(result, []) == 1.0
