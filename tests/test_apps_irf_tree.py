"""Tests for the decision-tree regressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps.irf.tree import DecisionTreeRegressor


def step_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 4))
    y = np.where(X[:, 1] > 0.2, 5.0, -2.0)
    return X, y


class TestFit:
    def test_learns_step_function(self):
        X, y = step_data()
        tree = DecisionTreeRegressor(max_depth=3, seed=0).fit(X, y)
        pred = tree.predict(X)
        assert np.mean((pred - y) ** 2) < 0.01

    def test_importance_concentrates_on_true_feature(self):
        X, y = step_data()
        tree = DecisionTreeRegressor(max_depth=3, seed=0).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 1
        assert tree.feature_importances_[1] > 0.9

    def test_importances_normalized_and_nonnegative(self):
        X, y = step_data()
        tree = DecisionTreeRegressor(seed=0).fit(X, y)
        imp = tree.feature_importances_
        assert np.all(imp >= 0)
        assert imp.sum() == pytest.approx(1.0)

    def test_constant_target_gives_stump(self):
        X = np.random.default_rng(0).random((50, 3))
        y = np.full(50, 7.0)
        tree = DecisionTreeRegressor(seed=0).fit(X, y)
        assert tree.depth() == 0
        assert tree.n_leaves() == 1
        assert np.all(tree.predict(X) == 7.0)
        assert tree.feature_importances_.sum() == 0.0

    def test_max_depth_respected(self):
        X, y = step_data()
        y = y + np.random.default_rng(1).normal(0, 1, len(y))
        tree = DecisionTreeRegressor(max_depth=2, seed=0).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf_respected(self):
        X, y = step_data(n=100)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=20, seed=0).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree._root)) >= 20

    def test_single_sample(self):
        tree = DecisionTreeRegressor(seed=0).fit([[1.0]], [3.0])
        assert tree.predict([[99.0]])[0] == 3.0


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError, match="2-D"):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError, match="y shape"):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError, match="0 samples"):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_predict_wrong_width_rejected(self):
        tree = DecisionTreeRegressor(seed=0).fit(np.zeros((5, 3)), np.arange(5.0))
        with pytest.raises(ValueError):
            tree.predict(np.zeros((2, 4)))

    @pytest.mark.parametrize("mf", [0, 7, -1])
    def test_bad_int_max_features(self, mf):
        X, y = step_data(n=50)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=mf, seed=0).fit(X, y)

    def test_bad_float_max_features(self):
        X, y = step_data(n=50)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_features=1.5, seed=0).fit(X, y)

    def test_bad_weights_rejected(self):
        X, y = step_data(n=50)
        with pytest.raises(ValueError, match="shape"):
            DecisionTreeRegressor(seed=0).fit(X, y, feature_weights=[1.0])
        with pytest.raises(ValueError, match="nonnegative"):
            DecisionTreeRegressor(seed=0).fit(X, y, feature_weights=[-1, 1, 1, 1])


class TestFeatureWeights:
    def test_zero_weight_feature_never_split(self):
        X, y = step_data()
        # forbid the true feature; the tree must split elsewhere (or nowhere useful)
        weights = np.array([1.0, 0.0, 1.0, 1.0])
        tree = DecisionTreeRegressor(max_depth=3, max_features=2, seed=0).fit(
            X, y, feature_weights=weights
        )
        assert tree.feature_importances_[1] == 0.0

    def test_sqrt_max_features(self):
        X, y = step_data(n=100)
        tree = DecisionTreeRegressor(max_features="sqrt", seed=0)
        assert tree._n_candidate_features(16) == 4

    def test_fraction_max_features(self):
        tree = DecisionTreeRegressor(max_features=0.5, seed=0)
        assert tree._n_candidate_features(10) == 5


@settings(deadline=None, max_examples=30)
@given(
    X=hnp.arrays(
        np.float64,
        st.tuples(st.integers(5, 40), st.integers(1, 5)),
        elements=st.floats(-100, 100, allow_nan=False),
    ),
    depth=st.integers(1, 6),
)
def test_predictions_bounded_by_target_range(X, depth):
    """Property: leaf means can never leave the training-target range."""
    rng = np.random.default_rng(0)
    y = rng.uniform(-10, 10, X.shape[0])
    tree = DecisionTreeRegressor(max_depth=depth, seed=1).fit(X, y)
    pred = tree.predict(X)
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9
    imp = tree.feature_importances_
    assert np.all(imp >= 0)
    assert imp.sum() == pytest.approx(1.0) or imp.sum() == 0.0
