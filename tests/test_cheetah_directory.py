"""Tests for the campaign directory schema."""

import json

import pytest

from repro.cheetah.campaign import AppSpec, Campaign, Sweep
from repro.cheetah.directory import CampaignDirectory, RunStatus
from repro.cheetah.parameters import SweepParameter


def make_manifest(n=4):
    camp = Campaign("study", app=AppSpec("app"))
    sg = camp.sweep_group("g", nodes=2, walltime=60.0)
    sg.add(Sweep([SweepParameter("x", range(n))]))
    return camp.to_manifest()


class TestCreation:
    def test_layout(self, tmp_path):
        man = make_manifest()
        root = CampaignDirectory(tmp_path, man).create()
        assert (root / ".cheetah" / "manifest.json").exists()
        assert (root / ".cheetah" / "status.json").exists()
        assert (root / "g" / "run-0000" / "params.json").exists()

    def test_params_json_content(self, tmp_path):
        man = make_manifest()
        cd = CampaignDirectory(tmp_path, man)
        cd.create()
        params = json.loads((cd.run_dir("g/run-0002") / "params.json").read_text())
        assert params == {"x": 2}

    def test_idempotent_create(self, tmp_path):
        man = make_manifest()
        cd = CampaignDirectory(tmp_path, man)
        cd.create()
        cd.set_status("g/run-0000", RunStatus.DONE)
        cd.create()  # re-create must not reset status
        assert cd.read_status()["g/run-0000"] is RunStatus.DONE

    def test_conflicting_manifest_rejected(self, tmp_path):
        CampaignDirectory(tmp_path, make_manifest(3)).create()
        with pytest.raises(RuntimeError, match="different manifest"):
            CampaignDirectory(tmp_path, make_manifest(5)).create()

    def test_open_existing(self, tmp_path):
        man = make_manifest()
        CampaignDirectory(tmp_path, man).create()
        cd = CampaignDirectory.open(tmp_path / "study")
        assert cd.manifest == man


class TestStatus:
    def test_all_pending_initially(self, tmp_path):
        cd = CampaignDirectory(tmp_path, make_manifest())
        cd.create()
        assert cd.summary() == {"pending": 4, "running": 0, "done": 0, "failed": 0}

    def test_set_and_read(self, tmp_path):
        cd = CampaignDirectory(tmp_path, make_manifest())
        cd.create()
        cd.set_status("g/run-0001", RunStatus.RUNNING)
        assert cd.read_status()["g/run-0001"] is RunStatus.RUNNING

    def test_batch_update(self, tmp_path):
        cd = CampaignDirectory(tmp_path, make_manifest())
        cd.create()
        cd.update_status({"g/run-0000": RunStatus.DONE, "g/run-0001": RunStatus.FAILED})
        assert cd.summary()["done"] == 1
        assert cd.summary()["failed"] == 1

    def test_unknown_run_rejected(self, tmp_path):
        cd = CampaignDirectory(tmp_path, make_manifest())
        cd.create()
        with pytest.raises(KeyError):
            cd.set_status("ghost", RunStatus.DONE)

    def test_pending_runs_for_resubmission(self, tmp_path):
        """FAILED counts as pending: resubmission retries failures (§V-D)."""
        cd = CampaignDirectory(tmp_path, make_manifest())
        cd.create()
        cd.update_status({"g/run-0000": RunStatus.DONE, "g/run-0001": RunStatus.FAILED})
        pending = cd.pending_runs()
        ids = [r.run_id for r in pending]
        assert "g/run-0000" not in ids
        assert "g/run-0001" in ids
        assert len(pending) == 3

    def test_pending_runs_group_filter(self, tmp_path):
        cd = CampaignDirectory(tmp_path, make_manifest())
        cd.create()
        assert len(cd.pending_runs(group="g")) == 4
        assert cd.pending_runs(group="other") == ()
