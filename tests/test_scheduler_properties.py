"""Hypothesis hardening for the batch scheduler and template nesting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.engine import Simulator
from repro.cluster.job import AllocationRequest
from repro.cluster.node import NodePool
from repro.cluster.scheduler import BatchScheduler, QueueModel


@settings(deadline=None, max_examples=40)
@given(
    jobs=st.lists(
        st.tuples(st.integers(1, 4), st.floats(1.0, 200.0)),  # (nodes, walltime)
        min_size=1,
        max_size=12,
    ),
    backfill=st.booleans(),
)
def test_every_job_eventually_starts_and_nodes_conserve(jobs, backfill):
    """Property: with or without backfill, every submitted job starts
    exactly once, runs within the machine size, and all nodes return."""
    sim = Simulator()
    pool = NodePool(4)
    sched = BatchScheduler(
        sim, pool, QueueModel(median_wait=1.0, sigma=0.0), backfill=backfill, seed=0
    )
    started = []
    for i, (nodes, walltime) in enumerate(jobs):
        sched.submit(
            AllocationRequest(nodes=nodes, walltime=walltime, name=f"j{i}"),
            lambda a: started.append(a),
        )
    sim.run()
    assert len(started) == len(jobs)
    assert pool.free_count == 4
    # at no instant did concurrent allocations exceed the machine: check
    # by sweeping allocation intervals
    intervals = [(a.start, a.deadline, a.request.nodes) for a in started]
    events = []
    for start, end, nodes in intervals:
        events.append((start, nodes))
        events.append((end, -nodes))
    events.sort()
    in_use = 0
    for _t, delta in events:
        in_use += delta
        assert 0 <= in_use <= 4


@settings(deadline=None, max_examples=40)
@given(
    jobs=st.lists(st.integers(1, 4), min_size=2, max_size=10),
)
def test_fcfs_start_order_matches_submission_order(jobs):
    """Property: without backfill, grant order == submission order."""
    sim = Simulator()
    pool = NodePool(4)
    sched = BatchScheduler(sim, pool, QueueModel(median_wait=0.0, sigma=0.0), seed=0)
    order = []
    for i, nodes in enumerate(jobs):
        sched.submit(
            AllocationRequest(nodes=nodes, walltime=10.0, name=f"j{i}"),
            lambda a: order.append(a.request.name),
        )
    sim.run()
    assert order == [f"j{i}" for i in range(len(jobs))]


class TestTemplateNesting:
    """Deep nesting cases the basic suite doesn't reach."""

    def test_if_inside_for(self):
        from repro.skel.templates import Template

        t = Template(
            "{% for g in groups %}{% if g.last %}L{% else %}${g.i}{% endif %}{% endfor %}"
        )
        out = t.render(
            {"groups": [{"i": 0, "last": False}, {"i": 1, "last": False}, {"i": 2, "last": True}]}
        )
        assert out == "01L"

    def test_for_inside_if(self):
        from repro.skel.templates import Template

        t = Template("{% if on %}{% for i in items %}${i}{% endfor %}{% endif %}")
        assert t.render({"on": True, "items": [1, 2]}) == "12"
        assert t.render({"on": False, "items": [1, 2]}) == ""

    def test_triple_nesting(self):
        from repro.skel.templates import Template

        t = Template(
            "{% for row in grid %}{% for c in row %}"
            "{% if c != 0 %}${c}{% else %}.{% endif %}"
            "{% endfor %};{% endfor %}"
        )
        assert t.render({"grid": [[1, 0], [0, 2]]}) == "1.;.2;"

    def test_mismatched_nesting_rejected(self):
        from repro.skel.templates import Template, TemplateError

        with pytest.raises(TemplateError):
            Template("{% for i in x %}{% if a %}{% endfor %}{% endif %}")

    def test_loop_shadowing_outer_name(self):
        from repro.skel.templates import Template

        t = Template("${i}{% for i in items %}${i}{% endfor %}${i}")
        assert t.render({"i": "X", "items": [1]}) == "X1X"
