"""Tests for the Gray-Scott reaction-diffusion application."""

import numpy as np
import pytest

from repro.apps.simulation.grayscott import GrayScottParams, GrayScottSimulation


class TestStability:
    def test_fields_stay_bounded(self):
        sim = GrayScottSimulation(GrayScottParams(n=32), seed=0)
        sim.step(200)
        assert np.all(np.isfinite(sim.u)) and np.all(np.isfinite(sim.v))
        assert sim.u.min() > -0.5 and sim.u.max() < 1.6
        assert sim.v.min() > -0.5 and sim.v.max() < 1.6

    def test_unstable_discretization_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            GrayScottParams(du=0.3, dt=1.0)

    def test_timestep_counter(self):
        sim = GrayScottSimulation(GrayScottParams(n=16), seed=0)
        sim.step(3)
        sim.step()
        assert sim.timestep == 4

    def test_dynamics_actually_evolve(self):
        sim = GrayScottSimulation(GrayScottParams(n=32), seed=0)
        before = sim.v.copy()
        sim.step(50)
        assert not np.allclose(before, sim.v)

    def test_deterministic_per_seed(self):
        a = GrayScottSimulation(GrayScottParams(n=16), seed=4)
        b = GrayScottSimulation(GrayScottParams(n=16), seed=4)
        a.step(10)
        b.step(10)
        assert np.array_equal(a.u, b.u)


class TestCheckpointRestore:
    def test_roundtrip_restores_exact_state(self):
        sim = GrayScottSimulation(GrayScottParams(n=16), seed=1)
        sim.step(5)
        snap = sim.checkpoint()
        sim.step(10)
        sim.restore(snap)
        assert sim.timestep == 5
        assert np.array_equal(sim.u, snap["u"])

    def test_restart_reproduces_trajectory(self):
        """Restoring and re-running must give the identical trajectory —
        the correctness contract behind checkpoint-restart."""
        sim = GrayScottSimulation(GrayScottParams(n=16), seed=2)
        sim.step(5)
        snap = sim.checkpoint()
        sim.step(7)
        reference = sim.u.copy()
        sim.restore(snap)
        sim.step(7)
        assert np.array_equal(sim.u, reference)

    def test_snapshot_is_independent_copy(self):
        sim = GrayScottSimulation(GrayScottParams(n=16), seed=3)
        snap = sim.checkpoint()
        sim.step(5)
        assert not np.array_equal(snap["u"], sim.u)

    def test_shape_mismatch_rejected(self):
        sim16 = GrayScottSimulation(GrayScottParams(n=16), seed=0)
        sim32 = GrayScottSimulation(GrayScottParams(n=32), seed=0)
        with pytest.raises(ValueError, match="does not match"):
            sim32.restore(sim16.checkpoint())

    def test_checkpoint_bytes_exposed(self):
        sim = GrayScottSimulation(GrayScottParams(n=16, checkpoint_bytes=10**9))
        assert sim.checkpoint_bytes == 10**9

    def test_invalid_steps_rejected(self):
        sim = GrayScottSimulation(GrayScottParams(n=16))
        with pytest.raises(ValueError):
            sim.step(0)
