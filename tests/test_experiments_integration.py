"""Integration tests: every figure driver runs and reproduces its shape.

These use scaled-down parameters so the whole file stays fast; the full
paper-scale runs live in ``benchmarks/``.
"""

from repro.apps.simulation.run import RunConfig
from repro.experiments import (
    fig1_gauge_matrix,
    fig2_manual_vs_skel,
    fig3_overhead_sweep,
    fig4_variation,
    fig5_policies,
    fig6_timeline,
    fig7_campaign,
)


class TestFig1:
    def test_matrix_covers_all_six_gauges(self):
        result = fig1_gauge_matrix()
        gauges = {row[0] for row in result.rows}
        assert len(gauges) == 6
        assert result.to_text()  # renders

    def test_exemplar_assessments_ordered(self):
        result = fig1_gauge_matrix()
        profiles = result.extra["assessments"]
        assert profiles["skel+cheetah workflow"].dominates(profiles["black-box script"])


class TestFig2:
    def test_skel_single_edit(self):
        result = fig2_manual_vs_skel(num_files=250, group_size=100)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["skel-generated"][1] == 1
        assert by_name["traditional"][1] >= 15
        # debt collapses too
        assert by_name["skel-generated"][3] < by_name["traditional"][3]


class TestFig3:
    def test_monotone_and_bounded(self):
        config = RunConfig(timesteps=30, grid_n=16)
        result = fig3_overhead_sweep(
            overheads=(0.02, 0.05, 0.10, 0.30), seed=3, config=config
        )
        counts = [n for _o, n in result.extra["series"]]
        assert counts == sorted(counts)
        assert all(0 <= n <= 30 for n in counts)
        assert counts[-1] > counts[0]  # the budget knob actually does something
        assert result.extra["monotone"]


class TestFig4:
    def test_variation_present_at_fixed_budget(self):
        config = RunConfig(timesteps=30, grid_n=16)
        result = fig4_variation(n_runs=6, overhead=0.10, seed=5, config=config)
        counts = result.extra["counts"]
        assert len(counts) == 6
        assert max(counts) > min(counts)


class TestFig5:
    def test_policies_and_reuse(self):
        result = fig5_policies(n_items=600)
        by_policy = {row[0]: row for row in result.rows}
        n = 600
        assert by_policy["forward-all"][2] == n
        assert by_policy["sample-every-10"][2] == n // 10
        assert by_policy["direct-selection"][2] == n // 50
        # communication code reuse across policy swap is total
        assert result.extra["reuse_policy_swap"] == 1.0
        assert 0.5 < result.extra["reuse_schema_change"] < 1.0
        # the runtime install arrived promptly after the requested watermark
        assert 0 <= result.extra["install_latency_items"] <= 5


class TestFig6:
    def test_dynamic_beats_static_utilization(self):
        result = fig6_timeline(n_tasks=40, nodes=8, walltime=3600.0, seed=2)
        idle = result.extra["idle"]
        assert idle["dynamic"] < idle["static"]
        timelines = result.extra["timelines"]
        assert len(timelines) == 2
        for text in timelines.values():
            assert "#" in text

    def test_same_workload_both_executors(self):
        result = fig6_timeline(n_tasks=30, nodes=6, walltime=3600.0, seed=3)
        runs = result.extra["results"]
        totals = {label: len(r.tasks) for label, r in runs.items()}
        assert len(set(totals.values())) == 1


class TestFig7:
    def test_speedup_shape(self):
        result = fig7_campaign(
            n_features=120, nodes=8, walltime=3600.0, max_allocations=60, seed=4
        )
        assert result.extra["per_alloc_speedup"] > 1.5
        assert result.extra["speedup"] > 2.0
        # both complete the campaign at this scale
        for r in result.extra["results"].values():
            assert r.all_done


class TestEndToEndCampaignFlow:
    def test_manifest_directory_executor_roundtrip(self, tmp_path):
        """Compose -> manifest -> directory -> simulate -> record status ->
        resume pending: the full §V-D loop."""
        from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
        from repro.cheetah.directory import CampaignDirectory, RunStatus
        from repro.cheetah.manifest import manifest_from_json, manifest_to_json
        from repro.cluster import ClusterSpec, SimulatedCluster
        from repro.savanna import PilotExecutor, tasks_from_manifest

        camp = Campaign("e2e", app=AppSpec("app"))
        sg = camp.sweep_group("g", nodes=4, walltime=300.0)
        sg.add(Sweep([SweepParameter("x", range(10))]))
        manifest = manifest_from_json(manifest_to_json(camp.to_manifest()))

        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()

        cluster = SimulatedCluster(
            ClusterSpec(nodes=4, queue_sigma=0.0, queue_median_wait=5.0, node_mttf=None, fs_load=None),
            seed=0,
        )
        tasks = tasks_from_manifest(manifest, lambda p: 100.0)
        result = PilotExecutor(cluster).run(tasks, nodes=4, walltime=300.0, max_allocations=1)

        # record outcomes in the campaign directory
        from repro.cluster.job import TaskState

        directory.update_status(
            {
                t.name: RunStatus.DONE if t.state is TaskState.DONE else RunStatus.PENDING
                for t in tasks
            }
        )
        done = directory.summary()["done"]
        assert done == len(result.completed)
        # 4 nodes x 300s / 100s per task = 12 slots, minus ramp: expect 8
        assert done == 8
        assert len(directory.pending_runs()) == 2

    def test_provenance_recorded_from_campaign(self):
        """Executor outcomes feed the provenance store with campaign context."""
        from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
        from repro.cluster import ClusterSpec, SimulatedCluster
        from repro.metadata.provenance import ProvenanceRecord, ProvenanceStore
        from repro.savanna import PilotExecutor, tasks_from_manifest

        camp = Campaign("prov", app=AppSpec("app"), objective="test provenance")
        sg = camp.sweep_group("g", nodes=2, walltime=500.0)
        sg.add(Sweep([SweepParameter("x", range(4))]))
        manifest = camp.to_manifest()

        cluster = SimulatedCluster(
            ClusterSpec(nodes=2, queue_sigma=0.0, node_mttf=None, fs_load=None), seed=0
        )
        tasks = tasks_from_manifest(manifest, lambda p: 50.0)
        result = PilotExecutor(cluster).run(tasks, nodes=2, walltime=500.0)

        store = ProvenanceStore()
        store.register_campaign(camp.context())
        for outcome in result.outcomes:
            for attempt in outcome.attempts:
                store.add(
                    ProvenanceRecord(
                        component=attempt.task.name,
                        start_time=attempt.start,
                        end_time=attempt.end,
                        campaign="prov",
                        outcome=attempt.outcome.value,
                        parameters=attempt.task.payload,
                    )
                )
        summary = store.summarize_campaign("prov")
        assert summary["runs"] == 4
        assert summary["outcomes"] == {"done": 4}
