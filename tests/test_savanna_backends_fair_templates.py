"""Tests for the executor backend registry, FAIR alignment, and
directory-loaded template libraries."""

import pytest

from repro.gauges.fair import Alignment, fair_alignment, fair_report
from repro.gauges.levels import (
    AccessTier,
    CustomizabilityTier,
    Gauge,
    GranularityTier,
    ProvenanceTier,
    SchemaTier,
    SemanticsTier,
)
from repro.gauges.model import GaugeProfile
from repro.savanna.backends import (
    available_backends,
    backend_descriptions,
    create_executor,
    get_backend,
    register_backend,
)


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"pilot", "static-sets", "local-threads"} <= set(available_backends())

    def test_create_local_executor(self):
        executor = create_executor("local-threads", max_workers=2)
        assert executor.max_workers == 2

    def test_create_simulated_executor(self, small_cluster):
        executor = create_executor("pilot", cluster=small_cluster)
        assert executor.cluster is small_cluster

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown executor backend"):
            get_backend("slurm-direct")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("pilot", lambda: None)

    def test_replace_flag_allows_override(self):
        sentinel = lambda: "custom"  # noqa: E731
        register_backend("test-backend-replace", sentinel)
        register_backend("test-backend-replace", sentinel, replace=True)
        assert get_backend("test-backend-replace") is sentinel

    def test_descriptions_present(self):
        descriptions = backend_descriptions()
        assert descriptions["pilot"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", lambda: None)


class TestFairAlignment:
    def test_baseline_unmet_everywhere(self):
        alignment = fair_alignment(GaugeProfile.baseline())
        assert all(a is Alignment.UNMET for a in alignment.values())

    def test_top_profile_meets_everything(self):
        top = GaugeProfile(
            data_access=AccessTier.QUERY,
            data_schema=SchemaTier.SELF_DESCRIBING,
            data_semantics=SemanticsTier.DATASET_SEMANTICS,
            software_granularity=GranularityTier.IO_SEMANTICS,
            software_customizability=CustomizabilityTier.RELATED,
            software_provenance=ProvenanceTier.EXPORTABLE,
        )
        alignment = fair_alignment(top)
        assert all(a is Alignment.MET for a in alignment.values())

    def test_r12_tracks_provenance_gauge(self):
        profile = GaugeProfile.baseline().with_tier(
            Gauge.SOFTWARE_PROVENANCE, ProvenanceTier.CAMPAIGN_KNOWLEDGE
        )
        assert fair_alignment(profile)["R1.2"] is Alignment.MET
        lower = profile.with_tier(Gauge.SOFTWARE_PROVENANCE, ProvenanceTier.EXECUTION_LOGS)
        assert fair_alignment(lower)["R1.2"] is Alignment.UNMET

    def test_partial_alignment(self):
        profile = GaugeProfile.baseline().with_tier(Gauge.DATA_SCHEMA, SchemaTier.DECLARED)
        # R1.3 needs schema DECLARED and customizability MODELED
        assert fair_alignment(profile)["R1.3"] is Alignment.PARTIAL

    def test_report_renders_all_principles(self):
        text = fair_report(GaugeProfile.baseline())
        for principle in ("I1", "I3", "R1", "R1.2", "R1.3"):
            assert principle in text
        assert "LOW" in text

    def test_paper_named_principles_mapped(self):
        """The conclusion names R1.2, R1.3, I3 — all must be present."""
        from repro.gauges.fair import FAIR_MAPPINGS

        names = {m.principle for m in FAIR_MAPPINGS}
        assert {"R1.2", "R1.3", "I3"} <= names


class TestTemplateDirectory:
    def write_templates(self, tmp_path):
        (tmp_path / "greet.tmpl").write_text(
            "#@ path: out/${who}.txt\nhello ${who}\n"
        )
        (tmp_path / "spec.tmpl").write_text(
            '#@ path: spec.json\n#@ comment: none\n{"who": "${who}"}\n'
        )
        return tmp_path

    def test_loads_all_templates(self, tmp_path):
        from repro.skel.generator import TemplateLibrary

        lib = TemplateLibrary.from_directory(self.write_templates(tmp_path))
        assert lib.names() == ["greet", "spec"]

    def test_generation_from_loaded_library(self, tmp_path):
        import json

        from repro.skel.generator import Generator, TemplateLibrary
        from repro.skel.model import ModelField, ModelSchema, SkelModel

        lib = TemplateLibrary.from_directory(self.write_templates(tmp_path))
        model = SkelModel(ModelSchema("m", (ModelField("who"),)), {"who": "disk"})
        files = {f.relpath: f for f in Generator(lib).generate(model)}
        assert "hello disk" in files["out/disk.txt"].content
        assert json.loads(files["spec.json"].content) == {"who": "disk"}
        # comment: none suppressed the fingerprint stamp
        assert "model-fingerprint" not in files["spec.json"].content

    def test_missing_path_directive_rejected(self, tmp_path):
        from repro.skel.generator import TemplateLibrary

        (tmp_path / "bad.tmpl").write_text("no directives here\n")
        with pytest.raises(ValueError, match="missing '#@ path:'"):
            TemplateLibrary.from_directory(tmp_path)

    def test_unknown_directive_rejected(self, tmp_path):
        from repro.skel.generator import TemplateLibrary

        (tmp_path / "bad.tmpl").write_text("#@ path: x\n#@ frobnicate: yes\nbody\n")
        with pytest.raises(ValueError, match="unknown template directive"):
            TemplateLibrary.from_directory(tmp_path)

    def test_missing_directory_rejected(self, tmp_path):
        from repro.skel.generator import TemplateLibrary

        with pytest.raises(FileNotFoundError):
            TemplateLibrary.from_directory(tmp_path / "ghost")
