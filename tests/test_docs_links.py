"""Doc rot stays a test failure: every link and module path in the docs
must resolve against the working tree (see ``tools/check_docs_links.py``)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs_links.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs_links", CHECKER)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs_links", module)
    spec.loader.exec_module(module)
    return module


def test_docs_links_and_module_paths_resolve():
    checker = _load_checker()
    problems = checker.collect_problems()
    assert not problems, "stale docs:\n" + "\n".join(problems)


def test_checker_detects_breakage():
    """The checker itself must not be a silent no-op."""
    checker = _load_checker()
    assert not checker.resolve_module_path("repro.not_a_module.Thing")
    assert not checker.resolve_module_path("repro.cluster.NoSuchClass")
    assert checker.resolve_module_path("repro.cluster.SimulatedCluster")
    assert checker.resolve_module_path("repro.cluster.SimulatedCluster.run")
    assert checker.resolve_module_path("repro.observability.provenance")
    assert not checker._file_path_exists("definitely_missing.md", CHECKER)
    assert checker._file_path_exists("README.md", CHECKER)
