"""Tests for the random forest, iRF, iRF-LOOP, and network scoring."""

import numpy as np
import pytest

from repro.apps.irf.datasets import census_like, synthetic_gwas
from repro.apps.irf.forest import RandomForestRegressor
from repro.apps.irf.iterative import IterativeRandomForest
from repro.apps.irf.loop import duration_model, feature_run_durations, irf_loop
from repro.apps.irf.network import network_from_adjacency, precision_at_k, top_edges


def step_data(n=250, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 5))
    y = np.where(X[:, 2] > 0.0, 4.0, -1.0) + 0.1 * rng.standard_normal(n)
    return X, y


class TestForest:
    def test_fits_and_predicts(self):
        X, y = step_data()
        rf = RandomForestRegressor(n_estimators=15, seed=0).fit(X, y)
        pred = rf.predict(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.95

    def test_oob_score_reasonable(self):
        X, y = step_data()
        rf = RandomForestRegressor(n_estimators=25, seed=0).fit(X, y)
        assert rf.oob_score_ is not None
        assert rf.oob_score_ > 0.8

    def test_importances_identify_signal(self):
        X, y = step_data()
        rf = RandomForestRegressor(n_estimators=20, seed=0).fit(X, y)
        assert np.argmax(rf.feature_importances_) == 2
        assert rf.feature_importances_.sum() == pytest.approx(1.0)

    def test_no_bootstrap_mode(self):
        X, y = step_data(n=80)
        rf = RandomForestRegressor(n_estimators=5, bootstrap=False, seed=0).fit(X, y)
        assert rf.oob_score_ is None
        assert len(rf.trees_) == 5

    def test_deterministic_per_seed(self):
        X, y = step_data(n=100)
        a = RandomForestRegressor(n_estimators=8, seed=5).fit(X, y)
        b = RandomForestRegressor(n_estimators=8, seed=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_feature_weights_respected(self):
        X, y = step_data()
        weights = np.array([1, 1, 0, 1, 1.0])  # exclude true feature
        rf = RandomForestRegressor(n_estimators=10, max_features=2, seed=0).fit(
            X, y, feature_weights=weights
        )
        assert rf.feature_importances_[2] == 0.0


class TestParallelForest:
    def test_n_jobs_does_not_change_result(self):
        X, y = step_data(n=150)
        serial = RandomForestRegressor(n_estimators=12, seed=4, n_jobs=1).fit(X, y)
        threaded = RandomForestRegressor(n_estimators=12, seed=4, n_jobs=4).fit(X, y)
        assert np.array_equal(serial.predict(X), threaded.predict(X))
        assert serial.oob_score_ == threaded.oob_score_
        assert np.array_equal(
            serial.feature_importances_, threaded.feature_importances_
        )

    def test_invalid_n_jobs_rejected(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_jobs=0)


class TestTreeText:
    def test_renders_splits_and_leaves(self):
        X, y = step_data(n=150)
        from repro.apps.irf import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=2, seed=0).fit(X, y)
        text = tree.to_text(feature_names=["a", "b", "c", "d", "e"])
        assert "c <=" in text  # the signal feature (index 2)
        assert "->" in text
        assert text.count("->") == tree.n_leaves()

    def test_default_labels(self):
        X, y = step_data(n=80)
        from repro.apps.irf import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=1, seed=0).fit(X, y)
        assert "x[2]" in tree.to_text()

    def test_validation(self):
        from repro.apps.irf import DecisionTreeRegressor

        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().to_text()
        X, y = step_data(n=50)
        tree = DecisionTreeRegressor(max_depth=1, seed=0).fit(X, y)
        with pytest.raises(ValueError, match="names for"):
            tree.to_text(feature_names=["only-one"])


class TestIterativeRF:
    def test_importances_concentrate_over_iterations(self):
        X, y = step_data()
        result = IterativeRandomForest(
            n_iterations=3, n_estimators=12, max_features=2, seed=0
        ).fit(X, y)
        first, last = result.history[0], result.history[-1]
        assert last[2] >= first[2] - 0.05  # signal feature keeps/gains mass
        assert np.argmax(last) == 2

    def test_history_length_and_stability(self):
        X, y = step_data(n=120)
        result = IterativeRandomForest(n_iterations=4, n_estimators=8, seed=1).fit(X, y)
        assert result.iterations == 4
        assert -1.0 <= result.stability() <= 1.0

    def test_single_iteration_equals_plain_forest_shape(self):
        X, y = step_data(n=100)
        result = IterativeRandomForest(n_iterations=1, n_estimators=5, seed=2).fit(X, y)
        assert result.iterations == 1
        assert result.forest is not None

    def test_weight_floor_keeps_features_alive(self):
        X, y = step_data(n=100)
        irf = IterativeRandomForest(n_iterations=2, weight_floor=0.5, n_estimators=5, seed=3)
        result = irf.fit(X, y)
        assert result.importances.shape == (5,)

    def test_validation(self):
        with pytest.raises(ValueError):
            IterativeRandomForest(n_iterations=0)
        with pytest.raises(ValueError):
            IterativeRandomForest(weight_floor=1.0)


class TestIrfLoop:
    def test_adjacency_shape_and_zero_diagonal(self):
        data = census_like(n_features=8, n_samples=120, seed=1)
        result = irf_loop(data.X, n_iterations=1, n_estimators=5, max_depth=4, seed=2)
        A = result.adjacency
        assert A.shape == (8, 8)
        assert np.all(np.diag(A) == 0.0)
        assert np.all(A >= 0)

    def test_columns_normalized(self):
        data = census_like(n_features=8, n_samples=120, seed=1)
        result = irf_loop(data.X, n_iterations=1, n_estimators=5, max_depth=4, seed=2)
        sums = result.column_sums()
        assert np.allclose(sums[sums > 0], 1.0)

    def test_recovers_planted_structure(self):
        data = census_like(n_features=14, n_samples=250, noise=0.2, seed=4)
        result = irf_loop(data.X, n_iterations=2, n_estimators=10, max_depth=6, seed=5)
        assert precision_at_k(result.adjacency, data.true_edges, k=10) >= 0.7

    def test_targets_subset(self):
        data = census_like(n_features=8, n_samples=100, seed=1)
        result = irf_loop(
            data.X, targets=[0, 3], n_iterations=1, n_estimators=4, max_depth=3, seed=2
        )
        untouched = [j for j in range(8) if j not in (0, 3)]
        assert np.all(result.adjacency[:, untouched] == 0)
        assert len(result.oob_scores) == 2

    def test_bad_target_rejected(self):
        data = census_like(n_features=6, n_samples=60, seed=1)
        with pytest.raises(ValueError, match="out of range"):
            irf_loop(data.X, targets=[99], n_estimators=3)

    def test_needs_two_features(self):
        with pytest.raises(ValueError, match="at least 2"):
            irf_loop(np.zeros((10, 1)))

    def test_name_count_checked(self):
        with pytest.raises(ValueError):
            irf_loop(np.zeros((10, 3)), feature_names=("a",), n_estimators=2)


class TestDurations:
    def test_deterministic_and_positive(self):
        a = feature_run_durations(100, seed=1)
        b = feature_run_durations(100, seed=1)
        assert np.array_equal(a, b)
        assert np.all(a > 0)

    def test_heavy_tail(self):
        d = feature_run_durations(5000, median_seconds=100.0, sigma=1.4, seed=2)
        assert np.quantile(d, 0.99) > 10 * np.median(d)

    def test_truncation_cap(self):
        d = feature_run_durations(1000, median_seconds=100.0, sigma=2.0, max_seconds=500.0, seed=3)
        assert d.max() <= 500.0

    def test_truncation_validation(self):
        with pytest.raises(ValueError, match="must exceed"):
            feature_run_durations(10, median_seconds=100.0, max_seconds=50.0)

    def test_duration_model_memoizes(self):
        model = duration_model(seed=4)
        assert model({"feature": 7}) == model({"feature": 7})

    def test_duration_model_requires_feature_key(self):
        with pytest.raises(KeyError):
            duration_model(seed=4)({"other": 1})


class TestNetwork:
    def make_adjacency(self):
        A = np.zeros((4, 4))
        A[0, 1] = 0.9
        A[2, 1] = 0.5
        A[1, 3] = 0.7
        return A

    def test_top_edges_ranked(self):
        edges = top_edges(self.make_adjacency(), k=2)
        assert edges[0][:2] == (0, 1)
        assert edges[1][:2] == (1, 3)

    def test_self_edges_excluded(self):
        A = np.eye(3)
        assert top_edges(A, k=5) == []

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            top_edges(np.zeros((2, 3)), k=1)

    def test_graph_construction(self):
        g = network_from_adjacency(self.make_adjacency(), ["a", "b", "c", "d"], k=2)
        assert g.has_edge("a", "b")
        assert g.number_of_edges() == 2
        assert g.number_of_nodes() == 4

    def test_precision_undirected_credit(self):
        A = self.make_adjacency()
        truth = {(1, 0)}  # reversed direction of the top edge
        assert precision_at_k(A, truth, k=1, undirected=True) == 1.0
        assert precision_at_k(A, truth, k=1, undirected=False) == 0.0

    def test_precision_empty_adjacency(self):
        assert precision_at_k(np.zeros((3, 3)), {(0, 1)}, k=5) == 0.0


class TestDatasets:
    def test_census_like_shapes_and_truth(self):
        data = census_like(n_features=20, n_samples=50, seed=0)
        assert data.X.shape == (50, 20)
        assert data.n_features == 20
        assert data.true_edges
        assert all(0 <= a < 20 and 0 <= b < 20 for a, b in data.true_edges)

    def test_census_standardized(self):
        data = census_like(n_features=15, n_samples=400, seed=1)
        assert np.allclose(data.X.mean(axis=0), 0, atol=1e-8)
        assert np.allclose(data.X.std(axis=0), 1, atol=1e-8)

    def test_census_children_depend_on_parents(self):
        data = census_like(
            n_features=10, n_samples=2000, noise=0.1, nonlinear_fraction=0.0, seed=2
        )
        parent, child = next(iter(data.true_edges))
        corr = abs(np.corrcoef(data.X[:, parent], data.X[:, child])[0, 1])
        # not a guarantee per edge (multi-parent mixing), but planted linear
        # children must correlate with at least one parent
        parents = [p for p, c in data.true_edges if c == child]
        corrs = [abs(np.corrcoef(data.X[:, p], data.X[:, child])[0, 1]) for p in parents]
        assert max(corrs) > 0.2

    def test_census_validation(self):
        with pytest.raises(ValueError):
            census_like(n_features=2, parents_per_feature=3)

    def test_gwas_genotype_values(self):
        data = synthetic_gwas(n_samples=100, n_snps=50, n_causal=5, seed=3)
        assert set(np.unique(data.genotypes)) <= {0, 1, 2}
        assert data.genotypes.shape == (100, 50)
        assert len(data.causal_snps) == 5

    def test_gwas_heritability_controls_signal(self):
        strong = synthetic_gwas(n_samples=400, n_snps=20, n_causal=3, heritability=0.9, seed=4)
        weak = synthetic_gwas(n_samples=400, n_snps=20, n_causal=3, heritability=0.1, seed=4)

        def genetic_r2(data):
            g = data.genotypes[:, list(data.causal_snps)].astype(float) @ data.effect_sizes
            return np.corrcoef(g, data.phenotype)[0, 1] ** 2

        assert genetic_r2(strong) > genetic_r2(weak)

    def test_gwas_validation(self):
        with pytest.raises(ValueError):
            synthetic_gwas(n_causal=100, n_snps=10)
        with pytest.raises(ValueError):
            synthetic_gwas(maf_range=(0.6, 0.7))
