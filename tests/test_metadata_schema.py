"""Tests for schemas, inference, and the conversion planner."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metadata.schema import (
    ConversionError,
    DataSchema,
    Field,
    FormatConverterRegistry,
    infer_schema,
)


class TestField:
    def test_compatible_same(self):
        a = Field("x", "float64", (3,))
        assert a.compatible_with(Field("x", "float64", (3,)))

    @pytest.mark.parametrize(
        "other",
        [
            Field("y", "float64", (3,)),
            Field("x", "int64", (3,)),
            Field("x", "float64", (4,)),
        ],
    )
    def test_incompatible(self, other):
        assert not Field("x", "float64", (3,)).compatible_with(other)


class TestSchemaTiers:
    def test_empty_schema_tier_zero(self):
        assert DataSchema().tier_index() == 0

    def test_named_format_tier_one(self):
        assert DataSchema(format_name="blob").tier_index() == 1

    def test_versioned_tier_two(self):
        assert DataSchema(format_name="csv", format_version="1").tier_index() == 2

    def test_fields_tier_three(self):
        s = DataSchema("csv", "1", (Field("a", "int64"),))
        assert s.tier_index() == 3

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError, match="duplicate field names"):
            DataSchema("f", "1", (Field("a", "int64"), Field("a", "int64")))

    def test_superset(self):
        small = DataSchema("f", "1", (Field("a", "int64"),))
        big = DataSchema("f", "2", (Field("a", "int64"), Field("b", "float64")))
        assert big.is_superset_of(small)
        assert not small.is_superset_of(big)

    def test_get_field(self):
        s = DataSchema("f", "1", (Field("a", "int64"),))
        assert s.get("a").dtype == "int64"
        with pytest.raises(KeyError):
            s.get("z")


class TestInference:
    def test_from_dict(self):
        s = infer_schema({"a": np.zeros(3), "b": 1.5})
        assert s.tier_index() == 3
        assert s.get("a").shape == (3,)
        assert s.get("b").dtype == "float64"

    def test_from_plain_ndarray(self):
        s = infer_schema(np.zeros((2, 2), dtype=np.int32))
        assert s.get("data").dtype == "int32"

    def test_from_structured_array(self):
        arr = np.zeros(3, dtype=[("x", "f8"), ("y", "i4")])
        s = infer_schema(arr)
        assert s.field_names() == ("x", "y")

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            infer_schema("a string")


class TestConversionPlanner:
    def make_registry(self):
        reg = FormatConverterRegistry()
        reg.register("a", "hub", lambda d: ("a->hub", d))
        reg.register("hub", "a", lambda d: d[1])
        reg.register("b", "hub", lambda d: ("b->hub", d))
        reg.register("hub", "b", lambda d: d[1])
        reg.register("hub", "c", lambda d: ("hub->c", d))
        return reg

    def test_direct_plan(self):
        reg = self.make_registry()
        plan = reg.plan("a", "hub")
        assert plan.length == 1
        assert plan.describe() == "a -> hub"

    def test_transitive_plan_through_hub(self):
        reg = self.make_registry()
        plan = reg.plan("a", "c")
        assert [dst for _s, dst, _f in plan.steps] == ["hub", "c"]

    def test_identity_plan(self):
        reg = self.make_registry()
        plan = reg.plan("a", "a")
        assert plan.length == 0
        assert plan.apply("x") == "x"

    def test_apply_chains_functions(self):
        reg = self.make_registry()
        out = reg.convert("payload", "a", "c")
        assert out == ("hub->c", ("a->hub", "payload"))

    def test_no_path_raises(self):
        reg = self.make_registry()
        with pytest.raises(ConversionError):
            reg.plan("c", "a")  # c has no outgoing edges

    def test_unknown_format_raises(self):
        reg = self.make_registry()
        with pytest.raises(ConversionError, match="no converters registered"):
            reg.plan("nope", "a")

    def test_can_convert(self):
        reg = self.make_registry()
        assert reg.can_convert("a", "b")
        assert reg.can_convert("a", "a")
        assert not reg.can_convert("c", "a")

    def test_cost_prefers_cheap_path(self):
        reg = FormatConverterRegistry()
        reg.register("x", "y", lambda d: "direct", cost=10.0)
        reg.register("x", "m", lambda d: d, cost=1.0)
        reg.register("m", "y", lambda d: "via-m", cost=1.0)
        assert reg.convert("d", "x", "y") == "via-m"

    def test_self_conversion_registration_rejected(self):
        reg = FormatConverterRegistry()
        with pytest.raises(ValueError):
            reg.register("x", "x", lambda d: d)

    def test_nonpositive_cost_rejected(self):
        reg = FormatConverterRegistry()
        with pytest.raises(ValueError):
            reg.register("x", "y", lambda d: d, cost=0)

    def test_converters_from(self):
        reg = self.make_registry()
        assert reg.converters_from("hub") == ["a", "b", "c"]
        assert reg.converters_from("unknown") == []


@given(st.lists(st.tuples(st.sampled_from("abcdef"), st.sampled_from("abcdef")), max_size=20))
def test_planner_never_returns_broken_chain(edges):
    """Property: any plan found is a connected chain from source to target."""
    reg = FormatConverterRegistry()
    for s, t in edges:
        if s != t:
            reg.register(s, t, lambda d: d)
    for source in "abcdef":
        for target in "abcdef":
            try:
                plan = reg.plan(source, target)
            except ConversionError:
                continue
            chain = [source] + [dst for _s, dst, _f in plan.steps]
            assert chain[-1] == target
            for (a, b, _f) in plan.steps:
                assert reg.can_convert(a, b)
