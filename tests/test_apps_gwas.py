"""Tests for the GWAS app: data, formats, paste, and the Skel workflow."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.gwas.data import write_genotype_tables, write_phenotype_table
from repro.apps.gwas.formats import (
    AnnotationRecord,
    annotation_registry,
    parse_bed,
    parse_custom,
    parse_gff3,
    to_bed,
    to_custom,
    to_gff3,
)
from repro.apps.gwas.paste import (
    PasteError,
    estimate_paste_time,
    paste_files,
    split_columns,
    two_phase_paste,
)
from repro.apps.gwas.workflow import (
    GwasPasteWorkflow,
    derive_groups,
    manual_vs_generated,
    workflow_components_before_after,
)
from repro.cluster.filesystem import ParallelFilesystem
from repro.skel.library import paste_model_schema
from repro.skel.model import SkelModel


class TestData:
    def test_tables_written_with_consistent_rows(self, tmp_path):
        paths = write_genotype_tables(tmp_path, n_files=5, n_samples=10, snps_per_file=4, seed=0)
        assert len(paths) == 5
        line_counts = {len(p.read_text().splitlines()) for p in paths}
        assert line_counts == {11}  # header + 10 samples

    def test_values_are_genotypes(self, tmp_path):
        paths = write_genotype_tables(tmp_path, n_files=2, n_samples=5, snps_per_file=3, seed=0)
        body = paths[0].read_text().splitlines()[1:]
        values = {v for line in body for v in line.split("\t")}
        assert values <= {"0", "1", "2"}

    def test_phenotype_table(self, tmp_path):
        p = write_phenotype_table(tmp_path, n_samples=7, trait="height", seed=0)
        lines = p.read_text().splitlines()
        assert lines[0] == "height"
        assert len(lines) == 8


class TestGwasDataset:
    def test_phenotype_consistent_with_chunks(self, tmp_path):
        """End-to-end: paste the chunks, scan against the written
        phenotype, recover most planted causal SNPs."""
        import numpy as np

        from repro.apps.gwas.association import gwas_scan, recovery_rate
        from repro.apps.gwas.data import write_gwas_dataset

        paths, phenotype_path, truth = write_gwas_dataset(
            tmp_path, n_files=8, n_samples=400, snps_per_file=10,
            n_causal=4, heritability=0.8, seed=5,
        )
        merged = paste_files(paths, tmp_path / "merged.tsv")
        rows = merged.read_text().splitlines()
        genotypes = np.array([[int(v) for v in r.split("\t")] for r in rows[1:]])
        phenotype = np.array(
            [float(v) for v in phenotype_path.read_text().splitlines()[1:]]
        )
        assert genotypes.shape == truth.genotypes.shape
        assert np.array_equal(genotypes, truth.genotypes)
        scan = gwas_scan(genotypes, phenotype)
        assert recovery_rate(scan, truth.causal_snps) >= 0.5

    def test_returns_ground_truth(self, tmp_path):
        from repro.apps.gwas.data import write_gwas_dataset

        _paths, _ppath, truth = write_gwas_dataset(
            tmp_path, n_files=3, n_samples=30, snps_per_file=5, n_causal=2, seed=1
        )
        assert len(truth.causal_snps) == 2
        assert truth.genotypes.shape == (30, 15)


class TestAnnotationFormats:
    RECORDS = [
        AnnotationRecord("chr1", 10, 20, "geneA", 5.0, "+"),
        AnnotationRecord("chr2", 0, 7, "geneB", 0.0, "-"),
    ]

    def test_bed_roundtrip(self):
        assert parse_bed(to_bed(self.RECORDS)) == self.RECORDS

    def test_gff3_roundtrip(self):
        assert parse_gff3(to_gff3(self.RECORDS)) == self.RECORDS

    def test_custom_roundtrip(self):
        assert parse_custom(to_custom(self.RECORDS)) == self.RECORDS

    def test_coordinate_convention_bed_vs_gff3(self):
        """BED is 0-based half-open; GFF3 is 1-based closed. Same interval,
        different numbers on disk."""
        bed_line = to_bed(self.RECORDS[:1]).splitlines()[0].split("\t")
        gff_line = to_gff3(self.RECORDS[:1]).splitlines()[1].split("\t")
        assert (bed_line[1], bed_line[2]) == ("10", "20")
        assert (gff_line[3], gff_line[4]) == ("11", "20")

    def test_bed_skips_comments_and_headers(self):
        text = "# comment\ntrack name=x\nchr1\t0\t5\n"
        assert len(parse_bed(text)) == 1

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError, match="BED line"):
            parse_bed("chr1\t5\n")
        with pytest.raises(ValueError, match="GFF3 line"):
            parse_gff3("too\tfew\tcolumns\n")
        with pytest.raises(ValueError, match="cannot parse"):
            parse_custom("garbage line\n")

    def test_record_validation(self):
        with pytest.raises(ValueError, match="empty interval"):
            AnnotationRecord("c", 5, 5)
        with pytest.raises(ValueError, match="strand"):
            AnnotationRecord("c", 0, 5, strand="x")
        with pytest.raises(ValueError):
            AnnotationRecord("c", -1, 5)

    def test_registry_converts_any_pair(self):
        reg = annotation_registry()
        bed = to_bed(self.RECORDS)
        for target, parser in (("gff3", parse_gff3), ("custom", parse_custom)):
            converted = reg.convert(bed, "bed", target)
            assert parser(converted) == self.RECORDS

    def test_registry_plan_goes_through_hub(self):
        reg = annotation_registry()
        plan = reg.plan("bed", "gff3")
        assert [dst for _s, dst, _f in plan.steps] == ["records", "gff3"]


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["chr1", "chr2", "chrX"]),
            st.integers(0, 10**6),
            st.integers(1, 10**4),
            st.sampled_from(["+", "-", "."]),
        ),
        max_size=20,
    )
)
def test_format_conversion_roundtrip_property(raw):
    """Property: bed -> custom -> gff3 -> bed is the identity."""
    records = [
        AnnotationRecord(c, s, s + l, f"r{i}", float(i), strand)
        for i, (c, s, l, strand) in enumerate(raw)
    ]
    reg = annotation_registry()
    text = to_bed(records)
    via_custom = reg.convert(text, "bed", "custom")
    via_gff3 = reg.convert(via_custom, "custom", "gff3")
    back = reg.convert(via_gff3, "gff3", "bed")
    assert parse_bed(back) == records


class TestPaste:
    def write(self, tmp_path, columns):
        paths = []
        for i, col in enumerate(columns):
            p = tmp_path / f"in_{i}.tsv"
            p.write_text("\n".join(col) + "\n")
            paths.append(p)
        return paths

    def test_paste_joins_columns(self, tmp_path):
        paths = self.write(tmp_path, [["a1", "a2"], ["b1", "b2"]])
        out = paste_files(paths, tmp_path / "out.tsv")
        assert out.read_text() == "a1\tb1\na2\tb2\n"

    def test_ragged_inputs_rejected(self, tmp_path):
        paths = self.write(tmp_path, [["a1", "a2"], ["b1"]])
        with pytest.raises(PasteError, match="differing line counts"):
            paste_files(paths, tmp_path / "out.tsv")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(PasteError, match="missing input"):
            paste_files([tmp_path / "nope.tsv"], tmp_path / "out.tsv")

    def test_empty_input_list_rejected(self, tmp_path):
        with pytest.raises(PasteError, match="no input files"):
            paste_files([], tmp_path / "out.tsv")

    def test_two_phase_equals_single_phase(self, tmp_path):
        cols = [[f"c{i}r{r}" for r in range(4)] for i in range(7)]
        paths = self.write(tmp_path, cols)
        single = paste_files(paths, tmp_path / "single.tsv")
        result = two_phase_paste(paths, tmp_path / "two.tsv", group_size=3, workdir=tmp_path / "w")
        assert (tmp_path / "two.tsv").read_text() == single.read_text()
        assert result["groups"] == 3
        assert result["max_fan_in"] <= 3

    def test_split_then_paste_roundtrip(self, tmp_path):
        table = tmp_path / "t.tsv"
        table.write_text("a\tb\tc\td\n1\t2\t3\t4\n")
        parts = split_columns(table, 3, tmp_path / "parts")
        out = paste_files(parts, tmp_path / "re.tsv")
        assert out.read_text() == table.read_text()

    def test_split_validation(self, tmp_path):
        table = tmp_path / "t.tsv"
        table.write_text("a\tb\n")
        with pytest.raises(PasteError, match="cannot split"):
            split_columns(table, 5, tmp_path)
        ragged = tmp_path / "r.tsv"
        ragged.write_text("a\tb\nc\n")
        with pytest.raises(PasteError, match="ragged"):
            split_columns(ragged, 2, tmp_path)


@settings(deadline=None, max_examples=25)
@given(
    rows=st.integers(1, 8),
    cols=st.integers(1, 10),
    n_parts=st.integers(1, 10),
)
def test_split_paste_roundtrip_property(tmp_path_factory, rows, cols, n_parts):
    """Property: split into any feasible number of parts, paste, recover."""
    if n_parts > cols:
        return
    tmp = tmp_path_factory.mktemp("prop")
    table = tmp / "t.tsv"
    body = "\n".join("\t".join(f"{r}.{c}" for c in range(cols)) for r in range(rows))
    table.write_text(body + "\n")
    parts = split_columns(table, n_parts, tmp / "parts")
    out = paste_files(parts, tmp / "re.tsv")
    assert out.read_text() == table.read_text()


class TestPasteCostModel:
    def test_two_phase_beats_single_at_large_fan_in(self):
        fs = ParallelFilesystem(peak_bandwidth=1e9, load_model=None)
        single = estimate_paste_time(20000, 1e6, fs)
        fs2 = ParallelFilesystem(peak_bandwidth=1e9, load_model=None)
        two = estimate_paste_time(20000, 1e6, fs2, group_size=100)
        assert two < single

    def test_single_phase_fine_at_small_fan_in(self):
        fs = ParallelFilesystem(peak_bandwidth=1e9, load_model=None)
        single = estimate_paste_time(50, 1e6, fs)
        fs2 = ParallelFilesystem(peak_bandwidth=1e9, load_model=None)
        two = estimate_paste_time(50, 1e6, fs2, group_size=10)
        assert single < two  # two-phase re-reads everything: pure overhead here


class TestDeriveGroups:
    def test_tiling(self):
        groups = derive_groups(25, 10)
        assert [(g["start"], g["stop"]) for g in groups] == [(0, 10), (10, 20), (20, 25)]
        assert groups[-1]["last"] is True
        assert all(not g["last"] for g in groups[:-1])

    def test_exact_division(self):
        groups = derive_groups(20, 10)
        assert len(groups) == 2

    def test_single_group(self):
        groups = derive_groups(5, 100)
        assert len(groups) == 1
        assert groups[0]["last"]

    def test_validation(self):
        with pytest.raises(ValueError):
            derive_groups(0, 10)
        with pytest.raises(ValueError):
            derive_groups(10, 0)


class TestWorkflow:
    def model(self, td, n_files=12, group_size=5):
        return SkelModel(
            paste_model_schema(),
            {
                "dataset_dir": str(td),
                "file_pattern": "chunk_*.tsv",
                "output_file": "merged.tsv",
                "num_files": n_files,
                "group_size": group_size,
                "machine_name": "simcluster",
                "account": "ACC1",
            },
        )

    def test_generates_complete_artifact_set(self, tmp_path):
        wf = GwasPasteWorkflow.from_model(self.model(tmp_path))
        names = {f.relpath for f in wf.files}
        assert {"final_join.sh", "submit_gwas-paste.sh", "campaign_gwas-paste.json",
                "status_gwas-paste.sh", "subpaste_0.sh", "subpaste_1.sh", "subpaste_2.sh"} == names

    def test_execute_local_produces_correct_merge(self, tmp_path):
        write_genotype_tables(tmp_path, n_files=12, n_samples=9, snps_per_file=3, seed=1)
        wf = GwasPasteWorkflow.from_model(self.model(tmp_path))
        wf.execute_local(tmp_path)
        merged = (tmp_path / "merged.tsv").read_text().splitlines()
        assert len(merged) == 10  # header + 9 samples
        assert len(merged[0].split("\t")) == 36  # 12 files x 3 snps

    def test_execute_checks_file_count(self, tmp_path):
        write_genotype_tables(tmp_path, n_files=3, n_samples=4, snps_per_file=2, seed=1)
        wf = GwasPasteWorkflow.from_model(self.model(tmp_path, n_files=12))
        with pytest.raises(ValueError, match="declares 12 files"):
            wf.execute_local(tmp_path)

    def test_from_json_entry_point(self, tmp_path):
        model = self.model(tmp_path)
        path = tmp_path / "model.json"
        path.write_text(model.to_json())
        wf = GwasPasteWorkflow.from_json(path)
        assert len(wf.groups) == 3

    def test_campaign_one_run_per_group(self, tmp_path):
        wf = GwasPasteWorkflow.from_model(self.model(tmp_path))
        man = wf.campaign().to_manifest()
        assert len(man) == 3
        assert [r.parameters["group"] for r in man.runs] == [0, 1, 2]

    def test_write_to_disk(self, tmp_path):
        wf = GwasPasteWorkflow.from_model(self.model(tmp_path))
        written = wf.write_to(tmp_path / "generated")
        assert all(p.exists() for p in written)


class TestFigure2Numbers:
    def test_manual_edit_collapse(self):
        result = manual_vs_generated(250, 100)
        assert result["skel_edits_per_configuration"] == 1
        assert result["traditional_edits_per_configuration"] > 15
        assert result["reduction_factor"] > 15

    def test_more_groups_more_traditional_edits(self):
        few = manual_vs_generated(100, 100)
        many = manual_vs_generated(1000, 100)
        assert many["traditional_edits_per_configuration"] > few["traditional_edits_per_configuration"]
        assert many["skel_edits_per_configuration"] == 1

    def test_before_after_gauge_collapse(self):
        from repro.gauges import assess, builtin_scenarios, score

        before, after = workflow_components_before_after()
        pa, pb = assess(before).profile, assess(after).profile
        assert pb.dominates(pa)
        scenario = builtin_scenarios()["new-dataset"]
        assert score(after, scenario).manual_minutes < score(before, scenario).manual_minutes
