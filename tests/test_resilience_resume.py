"""Tests for campaign checkpointing and resumable SweepGroups."""

import pytest

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, RunStatus
from repro.observability import BEGIN, END, GROUP_RESUMED, TASK, EventBus
from repro.resilience import CampaignCheckpoint
from repro.savanna import PilotExecutor, execute_manifest
from repro.savanna.executor import tasks_from_manifest

from conftest import make_cluster


def make_manifest(n=8, nodes=2, walltime=120.0):
    camp = Campaign("resume", app=AppSpec("app"))
    sg = camp.sweep_group("g", nodes=nodes, walltime=walltime)
    sg.add(Sweep([SweepParameter("x", range(n))]))
    return camp.to_manifest()


def make_directory(tmp_path, manifest):
    directory = CampaignDirectory(tmp_path, manifest)
    directory.create()
    return directory


class TestCampaignCheckpoint:
    def test_record_appends_and_reads_back(self, tmp_path):
        checkpoint = CampaignCheckpoint(make_directory(tmp_path, make_manifest()))
        checkpoint.record("g/run-0000", RunStatus.RUNNING, time=1.0)
        checkpoint.record("g/run-0000", RunStatus.DONE, time=2.0)
        entries = checkpoint.journal_entries()
        assert [e["status"] for e in entries] == ["running", "done"]

    def test_unknown_run_rejected(self, tmp_path):
        checkpoint = CampaignCheckpoint(make_directory(tmp_path, make_manifest()))
        with pytest.raises(KeyError, match="unknown run_id"):
            checkpoint.record("g/run-9999", RunStatus.DONE)

    def test_effective_status_overlays_journal_later_wins(self, tmp_path):
        directory = make_directory(tmp_path, make_manifest())
        checkpoint = CampaignCheckpoint(directory)
        checkpoint.record("g/run-0001", RunStatus.RUNNING)
        checkpoint.record("g/run-0001", RunStatus.DONE)
        status = checkpoint.effective_status()
        assert status["g/run-0001"] is RunStatus.DONE
        assert status["g/run-0000"] is RunStatus.PENDING
        assert checkpoint.completed() == {"g/run-0001"}
        # the base record on disk is untouched until compaction
        assert directory.read_status()["g/run-0001"] is RunStatus.PENDING

    def test_compact_folds_journal_and_requeues_running(self, tmp_path):
        directory = make_directory(tmp_path, make_manifest())
        checkpoint = CampaignCheckpoint(directory)
        checkpoint.record("g/run-0000", RunStatus.DONE)
        checkpoint.record("g/run-0001", RunStatus.RUNNING)  # driver died here
        checkpoint.compact()
        status = directory.read_status()
        assert status["g/run-0000"] is RunStatus.DONE
        assert status["g/run-0001"] is RunStatus.PENDING
        assert checkpoint.journal_entries() == []
        checkpoint.compact()  # no journal: a no-op

    def test_attach_journals_task_spans_and_ignores_foreign_tasks(self, tmp_path):
        checkpoint = CampaignCheckpoint(make_directory(tmp_path, make_manifest()))
        bus = EventBus()
        checkpoint.attach(bus)
        bus.emit(TASK, phase=BEGIN, task="g/run-0002", time=0.0)
        bus.emit(TASK, phase=END, task="g/run-0002", outcome="done")
        bus.emit(TASK, phase=BEGIN, task="not-a-campaign-run")
        bus.emit("node.busy", task="g/run-0003")
        checkpoint.detach()
        bus.emit(TASK, phase=BEGIN, task="g/run-0004")  # after detach: ignored
        assert [e["run"] for e in checkpoint.journal_entries()] == [
            "g/run-0002",
            "g/run-0002",
        ]
        assert checkpoint.completed() == {"g/run-0002"}

    def test_attach_twice_rejected_detach_idempotent(self, tmp_path):
        checkpoint = CampaignCheckpoint(make_directory(tmp_path, make_manifest()))
        bus = EventBus()
        checkpoint.attach(bus)
        with pytest.raises(RuntimeError, match="already attached"):
            checkpoint.attach(bus)
        checkpoint.detach()
        checkpoint.detach()
        checkpoint.attach(bus)  # re-attachable after detach
        checkpoint.detach()


class TestResumeThroughExecutor:
    def test_resume_requires_checkpoint(self):
        executor = PilotExecutor(make_cluster())
        with pytest.raises(ValueError, match="requires a checkpoint"):
            executor.run([], nodes=2, walltime=100.0, resume=True)

    def test_resume_skips_checkpointed_runs_and_emits_event(self, tmp_path):
        manifest = make_manifest(n=6, nodes=4, walltime=500.0)
        directory = make_directory(tmp_path, manifest)
        checkpoint = CampaignCheckpoint(directory)
        checkpoint.record("g/run-0000", RunStatus.DONE)
        checkpoint.record("g/run-0003", RunStatus.DONE)

        cluster = make_cluster(nodes=4)
        events = []
        cluster.bus.subscribe(events.append)
        tasks = tasks_from_manifest(manifest, lambda p: 10.0)
        result = PilotExecutor(cluster).run(
            tasks,
            nodes=4,
            walltime=500.0,
            checkpoint=checkpoint,
            resume=True,
        )
        assert result.all_done
        started = [
            e.fields["task"] for e in events if e.name == TASK and e.phase == BEGIN
        ]
        assert sorted(started) == [
            "g/run-0001",
            "g/run-0002",
            "g/run-0004",
            "g/run-0005",
        ]
        resumed = [e for e in events if e.name == GROUP_RESUMED]
        assert len(resumed) == 1
        assert resumed[0].fields["skipped"] == 2
        assert resumed[0].fields["pending"] == 4


class TestInterruptedCampaignResume:
    def test_interrupted_then_resumed_completes_exactly_the_remainder(self, tmp_path):
        # Acceptance: a SweepGroup cut off by its allocation budget,
        # resumed in a fresh process, finishes with zero duplicated runs —
        # asserted from the observability event stream.
        manifest = make_manifest(n=8, nodes=2, walltime=120.0)
        directory = make_directory(tmp_path, manifest)
        all_runs = {run.run_id for run in manifest.runs}

        # First invocation: one 2-node/120s allocation fits 4 of the 8
        # 50-second runs, then the walltime guillotine falls.
        execute_manifest(
            manifest,
            lambda p: 50.0,
            make_cluster(nodes=2),
            directory=directory,
            max_allocations=1,
        )
        done_first = {
            run_id
            for run_id, st in directory.read_status().items()
            if st is RunStatus.DONE
        }
        assert len(done_first) == 4

        # Second invocation: a fresh cluster/process resumes the campaign.
        cluster = make_cluster(nodes=2)
        events = []
        cluster.bus.subscribe(events.append)
        result = execute_manifest(
            manifest,
            lambda p: 50.0,
            cluster,
            directory=directory,
            max_allocations=4,
        )
        started = [
            e.fields["task"] for e in events if e.name == TASK and e.phase == BEGIN
        ]
        # exactly the remainder, each exactly once
        assert sorted(started) == sorted(all_runs - done_first)
        assert len(started) == len(set(started))
        resumed = [e for e in events if e.name == GROUP_RESUMED]
        assert len(resumed) == 1
        assert resumed[0].fields["skipped"] == 4
        assert result.all_done
        assert directory.summary()["done"] == 8

    def test_journal_survives_a_killed_driver(self, tmp_path):
        # Emulate a driver killed mid-campaign: DONE lines sit in the
        # journal, status.json still says PENDING, nothing was compacted.
        manifest = make_manifest(n=6, nodes=4, walltime=500.0)
        directory = make_directory(tmp_path, manifest)
        checkpoint = CampaignCheckpoint(directory)
        checkpoint.record("g/run-0000", RunStatus.DONE)
        checkpoint.record("g/run-0001", RunStatus.RUNNING)  # in flight at kill

        cluster = make_cluster(nodes=4)
        events = []
        cluster.bus.subscribe(events.append)
        result = execute_manifest(
            manifest, lambda p: 10.0, cluster, directory=directory
        )
        started = {
            e.fields["task"] for e in events if e.name == TASK and e.phase == BEGIN
        }
        assert "g/run-0000" not in started  # durably done: skipped
        assert "g/run-0001" in started  # interrupted in flight: re-queued
        assert result.all_done
        assert directory.summary()["done"] == 6

    def test_resume_false_re_executes_everything(self, tmp_path):
        manifest = make_manifest(n=4, nodes=4, walltime=500.0)
        directory = make_directory(tmp_path, manifest)
        directory.update_status({"g/run-0000": RunStatus.DONE})
        cluster = make_cluster(nodes=4)
        events = []
        cluster.bus.subscribe(events.append)
        execute_manifest(
            manifest, lambda p: 10.0, cluster, directory=directory, resume=False
        )
        started = {
            e.fields["task"] for e in events if e.name == TASK and e.phase == BEGIN
        }
        assert started == {run.run_id for run in manifest.runs}
        assert not [e for e in events if e.name == GROUP_RESUMED]
