"""Tests for deterministic fault injection and fault-tolerant execution."""

import pytest

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.cluster.job import Task
from repro.cluster.node import Node
from repro.observability import TASK, TASK_FAULT_INJECTED, TASK_RETRY, TASK_TIMEOUT
from repro.resilience import (
    CRASH_ON_START,
    FAULT_KINDS,
    MID_RUN_CRASH,
    STRAGGLER,
    TRANSIENT_IO,
    ExponentialBackoffPolicy,
    FaultInjector,
    FaultSpec,
    no_retry,
    parse_fault_specs,
)
from repro.savanna import PilotExecutor


def fault_cluster(nodes=4, injector=None, seed=7):
    spec = ClusterSpec(
        nodes=nodes,
        queue_sigma=0.0,
        queue_median_wait=10.0,
        node_mttf=None,
        fs_load=None,
    )
    return SimulatedCluster(spec, seed=seed, faults=injector)


def tasks_of(durations):
    return [
        Task(name=f"run-{i:04d}", duration=float(d))
        for i, d in enumerate(durations)
    ]


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("cosmic-ray", 0.1)

    def test_probability_must_be_fraction(self):
        with pytest.raises(ValueError):
            FaultSpec(CRASH_ON_START, 1.5)

    def test_slowdown_at_least_one(self):
        with pytest.raises(ValueError, match="slowdown"):
            FaultSpec(STRAGGLER, 0.1, slowdown=0.5)


class TestFaultInjector:
    def test_decisions_are_pure_functions_of_keys(self):
        injector = FaultInjector([FaultSpec(MID_RUN_CRASH, 0.5)], seed=3)
        first = injector.decide("run-0001", attempt=1, duration=100.0)
        second = injector.decide("run-0001", attempt=1, duration=100.0)
        assert first == second

    def test_decisions_are_order_independent(self):
        make = lambda: FaultInjector(  # noqa: E731 - tiny local factory
            [FaultSpec(CRASH_ON_START, 0.4), FaultSpec(STRAGGLER, 0.4)], seed=5
        )
        forward = make()
        a1 = forward.decide("a", 1, 10.0)
        b1 = forward.decide("b", 1, 10.0)
        backward = make()
        assert backward.decide("b", 1, 10.0) == b1
        assert backward.decide("a", 1, 10.0) == a1

    def test_crash_on_start_fails_at_zero(self):
        injector = FaultInjector([FaultSpec(CRASH_ON_START, 1.0)], seed=0)
        decision = injector.decide("x", 1, 200.0)
        assert decision.kind == CRASH_ON_START
        assert decision.fail_at == 0.0

    def test_mid_run_crash_lands_inside_the_attempt(self):
        injector = FaultInjector([FaultSpec(MID_RUN_CRASH, 1.0)], seed=0)
        decision = injector.decide("x", 1, 200.0)
        assert 0.05 * 200.0 <= decision.fail_at <= 0.95 * 200.0

    def test_straggler_slows_but_does_not_fail(self):
        injector = FaultInjector([FaultSpec(STRAGGLER, 1.0, slowdown=3.0)], seed=0)
        decision = injector.decide("x", 1, 200.0)
        assert decision.fail_at is None
        assert decision.slowdown == 3.0

    def test_transient_io_clears_after_max_attempts(self):
        injector = FaultInjector(
            [FaultSpec(TRANSIENT_IO, 1.0, max_attempts=2)], seed=0
        )
        assert injector.decide("x", 1, 50.0).kind == TRANSIENT_IO
        assert injector.decide("x", 2, 50.0).kind == TRANSIENT_IO
        assert injector.decide("x", 3, 50.0) is None

    def test_first_spec_wins(self):
        injector = FaultInjector(
            [FaultSpec(CRASH_ON_START, 1.0), FaultSpec(STRAGGLER, 1.0)], seed=0
        )
        assert injector.decide("x", 1, 50.0).kind == CRASH_ON_START

    def test_injected_count_tracks_strikes(self):
        injector = FaultInjector([FaultSpec(CRASH_ON_START, 1.0)], seed=0)
        injector.decide("x", 1, 50.0)
        injector.decide("y", 1, 50.0)
        assert injector.injected_count == 2

    def test_specs_are_type_checked(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultInjector([("crash-on-start", 0.1)])


class TestParseFaultSpecs:
    def test_parses_plan_string(self):
        specs = parse_fault_specs("crash-on-start=0.1, straggler=0.2", slowdown=2.0)
        assert [(s.kind, s.probability) for s in specs] == [
            (CRASH_ON_START, 0.1),
            (STRAGGLER, 0.2),
        ]
        assert specs[1].slowdown == 2.0

    def test_rejects_malformed_parts(self):
        with pytest.raises(ValueError, match="kind=rate"):
            parse_fault_specs("crash-on-start")

    def test_rejects_empty_plan(self):
        with pytest.raises(ValueError, match="no fault specs"):
            parse_fault_specs(" , ")

    def test_every_kind_is_parseable(self):
        plan = ",".join(f"{kind}=0.1" for kind in FAULT_KINDS)
        assert len(parse_fault_specs(plan)) == len(FAULT_KINDS)


class TestNodeDegradation:
    def test_effective_speed_divides_by_slowdown(self):
        node = Node(index=0, speed=2.0)
        assert node.effective_speed == 2.0
        node.degrade(4.0)
        assert node.effective_speed == 0.5
        node.restore()
        assert node.effective_speed == 2.0

    def test_degrade_below_one_rejected(self):
        with pytest.raises(ValueError):
            Node(index=0).degrade(0.9)


class TestFaultTolerantExecution:
    def test_seeded_crash_and_straggler_campaign_completes_via_retry(self):
        # Acceptance: under a seeded crash+straggler mix, a backoff policy
        # carries every run to completion within one allocation.
        injector = FaultInjector(
            [
                FaultSpec(CRASH_ON_START, 0.3),
                FaultSpec(STRAGGLER, 0.3, slowdown=2.0),
            ],
            seed=11,
        )
        cluster = fault_cluster(nodes=4, injector=injector)
        events = []
        cluster.bus.subscribe(events.append)
        executor = PilotExecutor(
            cluster,
            retry_policy=ExponentialBackoffPolicy(max_retries=5, base=10.0),
        )
        result = executor.run(
            tasks_of([100.0] * 16), nodes=4, walltime=20_000.0, max_allocations=1
        )
        assert len(result.completed) == 16
        kinds = {
            e.fields["kind"] for e in events if e.name == TASK_FAULT_INJECTED
        }
        assert CRASH_ON_START in kinds and STRAGGLER in kinds
        assert any(e.name == TASK_RETRY for e in events)

    def test_no_retry_baseline_is_hurt_by_the_same_faults(self):
        injector = FaultInjector([FaultSpec(CRASH_ON_START, 0.3)], seed=11)
        cluster = fault_cluster(nodes=4, injector=injector)
        executor = PilotExecutor(cluster, retry_policy=no_retry())
        result = executor.run(
            tasks_of([100.0] * 16), nodes=4, walltime=20_000.0, max_allocations=1
        )
        assert 0 < len(result.completed) < 16
        assert injector.injected_count > 0

    def test_straggler_stretches_wall_time_and_restores_nodes(self):
        injector = FaultInjector(
            [FaultSpec(STRAGGLER, 1.0, slowdown=4.0)], seed=2
        )
        cluster = fault_cluster(nodes=1, injector=injector)
        executor = PilotExecutor(cluster)
        result = executor.run(
            tasks_of([100.0]), nodes=1, walltime=10_000.0, max_allocations=1
        )
        attempt = result.tasks[0].attempts[0]
        assert attempt.end - attempt.start == pytest.approx(400.0)
        assert all(node.slowdown == 1.0 for node in cluster.pool.nodes)

    def test_timeout_cuts_attempt_and_emits_event(self):
        cluster = fault_cluster(nodes=1)
        events = []
        cluster.bus.subscribe(events.append)
        executor = PilotExecutor(
            cluster, retry_policy=no_retry(task_timeout=40.0)
        )
        result = executor.run(
            tasks_of([100.0]), nodes=1, walltime=10_000.0, max_allocations=1
        )
        assert not result.completed
        timeouts = [e for e in events if e.name == TASK_TIMEOUT]
        assert len(timeouts) == 1
        assert timeouts[0].fields["timeout"] == 40.0
        ends = [e for e in events if e.name == TASK and e.phase == "end"]
        assert ends[0].time == pytest.approx(timeouts[0].time)

    def test_identical_seeds_reproduce_identical_event_streams(self):
        def run_once():
            injector = FaultInjector(
                [FaultSpec(MID_RUN_CRASH, 0.4)], seed=13
            )
            cluster = fault_cluster(nodes=2, injector=injector)
            events = []
            cluster.bus.subscribe(events.append)
            executor = PilotExecutor(
                cluster, retry_policy=ExponentialBackoffPolicy(max_retries=4)
            )
            executor.run(
                tasks_of([60.0] * 8), nodes=2, walltime=20_000.0, max_allocations=1
            )
            return [(e.time, e.name, e.phase, e.fields.get("task")) for e in events]

        assert run_once() == run_once()
