"""Streaming analytics equivalence: fold-as-you-go == batch replay.

The contract under test (see ``repro.observability.analysis.streaming``):
a :class:`StreamingCampaignReport` fed the same event stream as
:func:`analyze_events` — one event at a time, or in arbitrary batch
chunkings — produces *serialized-identical* reports.  The committed
Chrome traces under ``benchmarks/results/`` are the fixtures: every
``*.trace.json`` in the repo is replayed through both paths.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cluster.cluster import ClusterSpec, SimulatedCluster
from repro.cluster.job import Task
from repro.observability.analysis import StreamingCampaignReport, analyze_events
from repro.observability.recorder import TraceRecorder, events_from_trace
from repro.savanna import PilotExecutor

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
COMMITTED_TRACES = sorted(RESULTS.glob("*.trace.json"))


def _serialize(reports) -> str:
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


def test_committed_traces_exist():
    """The fixture set must never silently go empty."""
    assert COMMITTED_TRACES, f"no committed *.trace.json under {RESULTS}"


@pytest.mark.parametrize(
    "trace_path", COMMITTED_TRACES, ids=[p.stem for p in COMMITTED_TRACES]
)
def test_streaming_matches_batch_event_by_event(trace_path):
    """Feeding one event at a time reproduces the batch reports exactly."""
    events = events_from_trace(trace_path)
    builder = StreamingCampaignReport()
    for event in events:
        builder.feed(event)
    assert _serialize(builder.reports()) == _serialize(analyze_events(events))


@pytest.mark.parametrize(
    "trace_path", COMMITTED_TRACES, ids=[p.stem for p in COMMITTED_TRACES]
)
@pytest.mark.parametrize("chunk", [1, 7, 64, 100000])
def test_streaming_matches_batch_under_any_chunking(trace_path, chunk):
    """on_batch delivery in arbitrary chunk sizes changes nothing."""
    events = events_from_trace(trace_path)
    builder = StreamingCampaignReport()
    for i in range(0, len(events), chunk):
        builder.on_batch(events[i : i + chunk])
    assert _serialize(builder.reports()) == _serialize(analyze_events(events))


def _small_campaign(bus_taps):
    """Run a small simulated campaign with extra bus subscribers attached."""
    cluster = SimulatedCluster(
        ClusterSpec(nodes=6, queue_sigma=0.0, queue_median_wait=60.0, node_mttf=4000.0),
        seed=5,
    )
    taps = [tap(cluster.bus) for tap in bus_taps]
    tasks = [Task(name=f"t{i}", duration=300.0 + 17.0 * i) for i in range(24)]
    PilotExecutor(cluster).run(tasks, nodes=6, walltime=20000.0)
    return taps


def test_live_capture_matches_recorder_replay():
    """Attached to a live bus, streaming == record-then-analyze."""
    recorder = TraceRecorder()
    builder = StreamingCampaignReport()
    _small_campaign([recorder.attach, builder.attach])
    recorder.detach()
    builder.detach()
    assert _serialize(builder.reports()) == _serialize(analyze_events(recorder.events))


def test_progress_is_available_midstream_and_consistent():
    events = events_from_trace(COMMITTED_TRACES[0])
    builder = StreamingCampaignReport()
    half = len(events) // 2
    builder.on_batch(events[:half])
    mid = builder.progress()
    assert mid["events"] == half
    assert mid["attempts_started"] >= mid["done"] + mid["failed"] + mid["killed"]
    builder.on_batch(events[half:])
    final = builder.progress()
    assert final["events"] == len(events)
    # The running counters must agree with the finalized report counts.
    totals = {"done": 0, "failed": 0, "killed": 0, "attempts": 0}
    for report in builder.reports():
        for key in ("done", "failed", "killed", "attempts"):
            totals[key] += report.counts[key]
    assert final["done"] == totals["done"]
    assert final["failed"] == totals["failed"]
    assert final["killed"] == totals["killed"]
    assert final["attempts_started"] == totals["attempts"]
    assert final["peak_concurrency"] >= 1
    assert final["busy_node_seconds"] > 0.0


def test_feeding_after_finalize_is_an_error():
    events = events_from_trace(COMMITTED_TRACES[0])
    builder = StreamingCampaignReport()
    builder.on_batch(events)
    builder.reports()
    with pytest.raises(RuntimeError, match="finalized"):
        builder.feed(events[0])


def test_reports_are_cached_and_stable():
    events = events_from_trace(COMMITTED_TRACES[0])
    builder = StreamingCampaignReport()
    builder.on_batch(events)
    assert builder.reports() is builder.reports()
