"""Tests for the Filter component, directory queries, and parallel iRF-LOOP."""

import numpy as np
import pytest

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, RunStatus
from repro.dataflow import DataflowGraph, Filter, Sink, Source


class TestFilter:
    def run_filter(self, items, predicate):
        g = DataflowGraph("f")
        src = g.add(Source("s", items))
        flt = g.add(Filter("f", predicate))
        sink = g.add(Sink("k"))
        g.connect(src, "out", flt, "in")
        g.connect(flt, "out", sink, "in")
        g.run()
        return flt, sink

    def test_drops_failing_items(self):
        flt, sink = self.run_filter(range(10), lambda v: v % 2 == 0)
        assert sink.payloads() == [0, 2, 4, 6, 8]
        assert flt.dropped == 5

    def test_passes_everything(self):
        flt, sink = self.run_filter(range(5), lambda v: True)
        assert len(sink.received) == 5
        assert flt.dropped == 0

    def test_drops_everything_still_terminates(self):
        flt, sink = self.run_filter(range(5), lambda v: False)
        assert sink.payloads() == []
        assert flt.dropped == 5

    def test_preserves_seq_and_timestamp(self):
        g = DataflowGraph("f")
        src = g.add(Source("s", range(3), clock=lambda i: 10.0 + i))
        flt = g.add(Filter("f", lambda v: v != 1))
        sink = g.add(Sink("k"))
        g.connect(src, "out", flt, "in")
        g.connect(flt, "out", sink, "in")
        g.run()
        assert [i.timestamp for i in sink.received] == [10.0, 12.0]


class TestDirectoryQueries:
    def make_directory(self, tmp_path):
        camp = Campaign("q", app=AppSpec("a"))
        sg = camp.sweep_group("g", nodes=2, walltime=60.0)
        sg.add(
            Sweep(
                [SweepParameter("x", [1, 2]), SweepParameter("mode", ["fast", "slow"])]
            )
        )
        cd = CampaignDirectory(tmp_path, camp.to_manifest())
        cd.create()
        return cd

    def test_query_by_parameter(self, tmp_path):
        cd = self.make_directory(tmp_path)
        runs = cd.runs_where(x=1)
        assert len(runs) == 2
        assert all(r.parameters["x"] == 1 for r in runs)

    def test_query_by_two_parameters(self, tmp_path):
        cd = self.make_directory(tmp_path)
        runs = cd.runs_where(x=2, mode="slow")
        assert len(runs) == 1

    def test_query_by_status_and_parameter(self, tmp_path):
        cd = self.make_directory(tmp_path)
        target = cd.runs_where(x=1, mode="fast")[0]
        cd.set_status(target.run_id, RunStatus.FAILED)
        failed = cd.runs_where(status=RunStatus.FAILED)
        assert [r.run_id for r in failed] == [target.run_id]
        assert cd.runs_where(status=RunStatus.FAILED, x=2) == ()

    def test_unknown_parameter_matches_nothing(self, tmp_path):
        cd = self.make_directory(tmp_path)
        assert cd.runs_where(ghost=1) == ()


class TestParallelIrfLoop:
    def test_matches_serial_exactly(self):
        from repro.apps.irf import census_like, irf_loop, irf_loop_parallel

        data = census_like(n_features=10, n_samples=120, seed=3)
        serial = irf_loop(data.X, n_iterations=1, n_estimators=4, max_depth=4, seed=5)
        parallel = irf_loop_parallel(
            data.X, n_iterations=1, n_estimators=4, max_depth=4, seed=5, max_workers=4
        )
        assert np.array_equal(serial.adjacency, parallel.adjacency)
        assert serial.oob_scores == parallel.oob_scores

    def test_worker_count_does_not_change_result(self):
        from repro.apps.irf import census_like, irf_loop_parallel

        data = census_like(n_features=8, n_samples=80, seed=1)
        one = irf_loop_parallel(data.X, n_iterations=1, n_estimators=3, seed=2, max_workers=1)
        many = irf_loop_parallel(data.X, n_iterations=1, n_estimators=3, seed=2, max_workers=8)
        assert np.array_equal(one.adjacency, many.adjacency)

    def test_validation(self):
        from repro.apps.irf import irf_loop_parallel

        with pytest.raises(ValueError):
            irf_loop_parallel(np.zeros((5, 3)), max_workers=0)
        with pytest.raises(ValueError, match="at least 2"):
            irf_loop_parallel(np.zeros((5, 1)))
