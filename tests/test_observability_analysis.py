"""Trace analytics: span reconstruction, reports, diffing, and the CLI.

Most tests drive the analyzer with small synthetic event streams built
through a real :class:`EventBus` (explicit ``time=`` overrides), so every
expected number is computable by hand; integration tests at the bottom
run the real simulated stack through ``savanna.drive`` and the fig6
harness.
"""

import json

import pytest

from repro.observability import (
    ALLOC,
    ALLOC_SUBMITTED,
    BEGIN,
    CAMPAIGN,
    CAMPAIGN_REPORT,
    END,
    GROUP,
    GROUP_RESUMED,
    TASK,
    TASK_RETRY,
    EventBus,
    validate_event_stream,
)
from repro.observability.analysis import (
    CampaignReport,
    SpanTrace,
    analyze_events,
    diff_reports,
    load_reports,
    mad,
    robust_threshold,
    write_reports,
)


def capture_bus():
    """An EventBus plus the list its events land in."""
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    return bus, seen


def emit_task(bus, task_id, start, end, node=0, name=None, attempt=1,
              outcome="done", group=None):
    fields = {"task_id": task_id, "task": name or f"t{task_id}", "node": node,
              "attempt": attempt}
    bus.emit(TASK, phase=BEGIN, time=start, **fields)
    bus.emit(TASK, phase=END, time=end, outcome=outcome, **fields)


def two_node_campaign():
    """campaign 0..400: queue wait 100, two nodes, three tasks.

    node 0: t1 100-200, gap 50, t2 250-400 (ends the campaign)
    node 1: t3 100-150, idle afterward
    """
    bus, seen = capture_bus()
    bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c", tasks=3)
    bus.emit(ALLOC_SUBMITTED, time=0.0, job="j0")
    bus.emit(ALLOC, phase=BEGIN, time=100.0, alloc=0, job="j0", nodes=[0, 1])
    bus.emit(TASK, phase=BEGIN, time=100.0, task_id=1, task="t1", node=0, attempt=1)
    bus.emit(TASK, phase=BEGIN, time=100.0, task_id=3, task="t3", node=1, attempt=1)
    bus.emit(TASK, phase=END, time=150.0, task_id=3, task="t3", node=1, attempt=1, outcome="done")
    bus.emit(TASK, phase=END, time=200.0, task_id=1, task="t1", node=0, attempt=1, outcome="done")
    bus.emit(TASK, phase=BEGIN, time=250.0, task_id=2, task="t2", node=0, attempt=1)
    bus.emit(TASK, phase=END, time=400.0, task_id=2, task="t2", node=0, attempt=1, outcome="done")
    bus.emit(ALLOC, phase=END, time=400.0, alloc=0, job="j0", nodes=[0, 1], reason="drained")
    bus.emit(CAMPAIGN, phase=END, time=400.0, campaign="c", completed=3)
    validate_event_stream(seen)
    return seen


class TestRobustStats:
    def test_mad(self):
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0

    def test_robust_threshold_resists_outliers(self):
        values = [100.0] * 9 + [1000.0]
        # A mean+3*stddev cut would be dragged up by the outlier itself;
        # median+MAD stays near the bulk.
        assert robust_threshold(values) < 200.0


class TestSpanTrace:
    def test_reconstructs_nesting_and_queue_wait(self):
        trace = SpanTrace.from_events(two_node_campaign())
        assert len(trace.campaigns) == 1
        campaign = trace.campaigns[0]
        assert campaign.name == "c" and campaign.end == 400.0
        allocs = trace.allocs_of(campaign)
        assert len(allocs) == 1
        assert allocs[0].queue_wait == 100.0  # submitted 0, granted 100
        tasks = trace.tasks_of(campaign)
        assert {t.task_id for t in tasks} == {1, 2, 3}
        assert all(t.alloc == 0 and t.campaign == "c" for t in tasks)

    def test_truncated_capture_closes_spans_at_last_time(self):
        bus, seen = capture_bus()
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c")
        bus.emit(TASK, phase=BEGIN, time=5.0, task_id=0, task="t0", node=0)
        # ... driver crashed; no END events.
        trace = SpanTrace.from_events(seen)
        assert trace.campaigns[0].end == 5.0
        assert trace.tasks[0].end == 5.0
        assert trace.tasks[0].outcome is None

    def test_retry_instants_accumulate(self):
        bus, seen = capture_bus()
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c")
        emit_task(bus, 7, 0.0, 10.0, outcome="failed")
        bus.emit(TASK_RETRY, time=10.0, task_id=7, delay=30.0)
        emit_task(bus, 7, 40.0, 50.0, attempt=2, outcome="failed")
        bus.emit(TASK_RETRY, time=50.0, task_id=7, delay=60.0)
        emit_task(bus, 7, 110.0, 120.0, attempt=3)
        bus.emit(CAMPAIGN, phase=END, time=120.0, campaign="c")
        trace = SpanTrace.from_events(seen)
        assert trace.retries_by_task[(bus.pid, 7)] == 2
        assert trace.backoff_by_task[(bus.pid, 7)] == 90.0


class TestCampaignReport:
    def test_critical_path_accounts_for_full_makespan(self):
        (report,) = analyze_events(two_node_campaign())
        assert report.makespan == 400.0
        kinds = [el["kind"] for el in report.critical_path]
        assert kinds == ["queue-wait", "task", "node-wait", "task"]
        assert report.critical_path_seconds == pytest.approx(400.0)
        # The path ends at the campaign-ending task, which has no slack.
        assert report.critical_path[-1]["label"].startswith("t2")
        assert report.critical_path[-1]["slack"] == 0.0

    def test_slack_of_off_path_task(self):
        (report,) = analyze_events(two_node_campaign())
        # t3 (node 1, ends 150) could slip 250s before hitting campaign end.
        t1 = next(el for el in report.critical_path if el["label"].startswith("t1"))
        assert t1["slack"] == pytest.approx(50.0)  # the gap before t2

    def test_attribution_node_seconds(self):
        (report,) = analyze_events(two_node_campaign())
        ns = report.attribution["node_seconds"]
        assert ns["capacity"] == pytest.approx(600.0)  # 2 nodes x 300s
        assert ns["execution"] == pytest.approx(300.0)  # 100 + 150 + 50
        assert ns["idle_gaps"] == pytest.approx(50.0)  # node 0: 200..250
        assert ns["idle_tail"] == pytest.approx(250.0)  # node 1: 150..400
        wc = report.attribution["wall_clock"]
        assert wc["queue_wait"] == pytest.approx(100.0)
        assert wc["in_allocation"] == pytest.approx(300.0)
        assert wc["resubmit_gaps"] == pytest.approx(0.0)

    def test_utilization_and_timeline(self):
        (report,) = analyze_events(two_node_campaign())
        u = report.utilization
        assert u["busy_node_seconds"] == pytest.approx(300.0)
        assert u["utilization"] == pytest.approx(0.5)
        assert u["peak_concurrency"] == 2
        assert len(u["timeline"]) == 16
        # Bucketed integral equals the total busy node-seconds.
        width = 400.0 / 16
        assert sum(b["busy"] * width for b in u["timeline"]) == pytest.approx(300.0)

    def test_stragglers_flagged_against_group_siblings(self):
        bus, seen = capture_bus()
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c")
        for i in range(9):
            emit_task(bus, i, 0.0, 100.0, node=i)
        emit_task(bus, 9, 0.0, 1000.0, node=9, name="slowpoke")
        bus.emit(CAMPAIGN, phase=END, time=1000.0, campaign="c")
        (report,) = analyze_events(seen)
        assert [s["task"] for s in report.stragglers] == ["slowpoke"]
        assert report.stragglers[0]["ratio"] == pytest.approx(10.0)

    def test_small_groups_never_flag_stragglers(self):
        bus, seen = capture_bus()
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c")
        emit_task(bus, 0, 0.0, 10.0)
        emit_task(bus, 1, 10.0, 1000.0)
        bus.emit(CAMPAIGN, phase=END, time=1000.0, campaign="c")
        (report,) = analyze_events(seen)
        assert report.stragglers == []

    def test_retry_hotspot_tasks(self):
        bus, seen = capture_bus()
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c")
        emit_task(bus, 5, 0.0, 10.0, outcome="failed", name="flaky")
        bus.emit(TASK_RETRY, time=10.0, task_id=5, delay=30.0)
        emit_task(bus, 5, 40.0, 50.0, attempt=2, outcome="failed", name="flaky")
        bus.emit(TASK_RETRY, time=50.0, task_id=5, delay=60.0)
        emit_task(bus, 5, 110.0, 120.0, attempt=3, name="flaky")
        bus.emit(CAMPAIGN, phase=END, time=120.0, campaign="c")
        (report,) = analyze_events(seen)
        (hot,) = report.retry_hotspots["tasks"]
        assert hot == {"task": "flaky", "retries": 2, "backoff": 90.0}
        # ... and the backoff shows up in the attribution.
        assert report.attribution["retry_backoff"] == pytest.approx(90.0)

    def test_report_roundtrips_through_dict(self):
        (report,) = analyze_events(two_node_campaign())
        clone = CampaignReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.makespan == report.makespan
        assert clone.critical_path == report.critical_path

    def test_to_text_names_the_sections(self):
        (report,) = analyze_events(two_node_campaign())
        text = report.to_text()
        for heading in ("critical path", "wait-time attribution",
                        "stragglers", "retry hotspots", "concurrency timeline"):
            assert heading in text


class TestAnalyzerEdgeCases:
    """The validate_event_stream contract meets the analyzer's corners."""

    def test_empty_campaign(self):
        bus, seen = capture_bus()
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="empty", tasks=0)
        bus.emit(CAMPAIGN, phase=END, time=0.0, campaign="empty", completed=0)
        validate_event_stream(seen)
        (report,) = analyze_events(seen)
        assert report.makespan == 0.0
        assert report.critical_path == []
        assert report.utilization["utilization"] == 0.0
        assert report.to_text()  # renders without dividing by zero

    def test_alloc_with_zero_tasks(self):
        bus, seen = capture_bus()
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c")
        bus.emit(ALLOC_SUBMITTED, time=0.0, job="j0")
        bus.emit(ALLOC, phase=BEGIN, time=50.0, alloc=0, job="j0", nodes=[0, 1])
        bus.emit(ALLOC, phase=END, time=150.0, alloc=0, job="j0", nodes=[0, 1], reason="walltime")
        bus.emit(CAMPAIGN, phase=END, time=150.0, campaign="c", completed=0)
        validate_event_stream(seen)
        (report,) = analyze_events(seen)
        # Every allocated node-second was idle tail; the critical path is
        # the queue wait alone.
        assert report.attribution["node_seconds"]["idle_tail"] == pytest.approx(200.0)
        assert [el["kind"] for el in report.critical_path] == ["queue-wait"]
        assert report.counts["attempts"] == 0

    def test_resumed_group_skip_count(self):
        bus, seen = capture_bus()
        bus.emit(GROUP, phase=BEGIN, time=0.0, campaign="c", group="g", runs=2)
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c/g")
        bus.emit(GROUP_RESUMED, time=0.0, campaign="c", total=7, skipped=5, pending=2)
        emit_task(bus, 0, 0.0, 10.0, group="g")
        emit_task(bus, 1, 10.0, 20.0, group="g")
        bus.emit(CAMPAIGN, phase=END, time=20.0, campaign="c/g", completed=2)
        bus.emit(GROUP, phase=END, time=20.0, campaign="c", group="g", completed=2)
        validate_event_stream(seen)
        (report,) = analyze_events(seen)
        assert report.group == "g"
        assert report.counts["resumed_skipped"] == 5
        assert "skipped by resume" in report.to_text()

    def test_out_of_order_seq_rejected(self):
        events = two_node_campaign()
        shuffled = [events[1], events[0], *events[2:]]
        with pytest.raises(ValueError, match="sequence"):
            validate_event_stream(shuffled)


class TestDiffReports:
    def _reports(self, makespan=400.0):
        events = two_node_campaign()
        reports = analyze_events(events)
        if makespan != 400.0:
            scale = makespan / 400.0
            for r in reports:
                r.makespan *= scale
                r.end = r.start + r.makespan
        return reports

    def test_identical_reports_do_not_regress(self):
        diff = diff_reports(self._reports(), self._reports())
        assert diff.regressions(threshold_pct=0.0) == []
        assert diff.diffs[0].makespan_pct == pytest.approx(0.0)

    def test_makespan_regression_detected(self):
        diff = diff_reports(self._reports(), self._reports(makespan=500.0))
        assert diff.diffs[0].makespan_pct == pytest.approx(25.0)
        assert diff.regressions(threshold_pct=10.0)
        assert diff.regressions(threshold_pct=30.0) == []
        assert "regression" in diff.to_text()

    def test_missing_campaign_fails_the_gate(self):
        diff = diff_reports(self._reports(), [])
        problems = diff.regressions(threshold_pct=100.0)
        assert problems and "missing" in problems[0]

    def test_accepts_plain_dicts(self):
        base = [r.to_dict() for r in self._reports()]
        cand = [r.to_dict() for r in self._reports(makespan=800.0)]
        diff = diff_reports(base, cand)
        assert diff.diffs[0].makespan_pct == pytest.approx(100.0)


class TestReportIO:
    def test_write_and_load_roundtrip(self, tmp_path):
        reports = analyze_events(two_node_campaign())
        path = write_reports(tmp_path / "r.json", reports)
        loaded = load_reports(path)
        assert [r.makespan for r in loaded] == [r.makespan for r in reports]

    def test_load_accepts_raw_trace(self, tmp_path):
        from repro.observability import TraceRecorder

        bus = EventBus()
        rec = TraceRecorder().attach(bus)
        bus.emit(CAMPAIGN, phase=BEGIN, time=0.0, campaign="c")
        bus.emit(CAMPAIGN, phase=END, time=10.0, campaign="c")
        path = rec.write_chrome_trace(tmp_path / "t.json")
        (report,) = load_reports(path)
        assert report.campaign == "c" and report.makespan == 10.0

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError, match="unrecognized"):
            load_reports(42)


class TestCLI:
    def _trace_file(self, tmp_path, name="t.json"):
        from repro.observability import TraceRecorder

        bus = EventBus()
        rec = TraceRecorder().attach(bus)
        for event in two_node_campaign():
            bus.emit(event.name, phase=event.phase, time=event.time, **event.fields)
        return rec.write_chrome_trace(tmp_path / name)

    def test_report_prints_the_analytics(self, tmp_path, capsys):
        from repro.observability.__main__ import main

        trace = self._trace_file(tmp_path)
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "wait-time attribution" in out

    def test_report_json_and_out_file(self, tmp_path, capsys):
        from repro.observability.__main__ import main

        trace = self._trace_file(tmp_path)
        out_path = tmp_path / "r.json"
        assert main(["report", str(trace), "--format", "json", "--out", str(out_path)]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["schema"].startswith("repro.observability.report/")
        assert load_reports(out_path)

    def test_diff_gate_passes_and_fails(self, tmp_path, capsys):
        from repro.observability.__main__ import main

        trace = self._trace_file(tmp_path)
        base = tmp_path / "base.json"
        assert main(["report", str(trace), "--out", str(base)]) == 0
        capsys.readouterr()
        # Same trace against its own report: no regression.
        assert main(["diff", str(base), str(trace), "--fail-on-regression", "5"]) == 0
        capsys.readouterr()
        # Degrade the candidate's makespan 50%: gate trips.
        data = json.loads(base.read_text())
        for r in data["reports"]:
            r["makespan"] *= 1.5
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(data))
        assert main(["diff", str(base), str(slow), "--fail-on-regression", "5"]) == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestLiveWiring:
    def _manifest(self, n=8):
        from repro.cheetah.manifest import CampaignManifest, RunSpec

        runs = tuple(
            RunSpec(run_id=f"sweep/run-{i:04d}", group="sweep", parameters={"x": i})
            for i in range(n)
        )
        return CampaignManifest(
            campaign="demo",
            app="app",
            runs=runs,
            executable="app.x",
            groups=({"name": "sweep", "nodes": 4, "walltime": 4000.0},),
        )

    def test_drive_report_emits_event_and_writes_report_json(self, tmp_path):
        from repro.cheetah.directory import CampaignDirectory
        from repro.cluster import ClusterSpec, SimulatedCluster
        from repro.savanna.drive import execute_campaign

        cluster = SimulatedCluster(ClusterSpec(nodes=4, node_mttf=None))
        seen = []
        cluster.bus.subscribe(
            lambda e: seen.append(e) if e.name == CAMPAIGN_REPORT else None
        )
        execute_campaign(
            self._manifest(), lambda p: 100.0, cluster,
            directory=tmp_path, report=True,
        )
        assert len(seen) == 1
        headline = seen[0].fields
        assert headline["group"] == "sweep"
        assert headline["tasks_done"] == 8
        assert headline["makespan"] > 0
        directory = CampaignDirectory.open(tmp_path / "demo")
        (saved,) = directory.read_report()
        assert saved["group"] == "sweep"
        assert saved["makespan"] == pytest.approx(headline["makespan"])

    def test_rerun_replaces_rather_than_duplicates(self, tmp_path):
        from repro.cheetah.directory import CampaignDirectory
        from repro.cluster import ClusterSpec, SimulatedCluster
        from repro.savanna.drive import execute_campaign

        for _ in range(2):
            cluster = SimulatedCluster(ClusterSpec(nodes=4, node_mttf=None))
            execute_campaign(
                self._manifest(), lambda p: 100.0, cluster,
                directory=tmp_path, report=True,
            )
        directory = CampaignDirectory.open(tmp_path / "demo")
        assert len(directory.read_report()) == 1

    def test_report_off_by_default_leaves_no_file(self, tmp_path):
        from repro.cheetah.directory import CampaignDirectory
        from repro.cluster import ClusterSpec, SimulatedCluster
        from repro.savanna.drive import execute_campaign

        cluster = SimulatedCluster(ClusterSpec(nodes=4, node_mttf=None))
        execute_campaign(self._manifest(), lambda p: 100.0, cluster, directory=tmp_path)
        directory = CampaignDirectory.open(tmp_path / "demo")
        assert directory.read_report() == []

    def test_fig6_reports_cover_both_executors(self):
        from repro.experiments import fig6_timeline, run_with_trace

        _, recorder = run_with_trace(
            fig6_timeline, n_tasks=24, nodes=6, walltime=7200.0, seed=21
        )
        reports = analyze_events(recorder.events)
        assert sorted(r.campaign for r in reports) == ["pilot", "static"]
        pilot = next(r for r in reports if r.campaign == "pilot")
        static = next(r for r in reports if r.campaign == "static")
        # The paper's claim, read straight off the trace: dynamic
        # scheduling wastes far less of the allocation than set barriers.
        assert pilot.utilization["utilization"] > static.utilization["utilization"]
        assert pilot.critical_path_seconds == pytest.approx(pilot.makespan)
