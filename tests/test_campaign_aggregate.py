"""Tests for execute_campaign, aggregate profiles, and catalog rendering."""

import pytest

from repro.cheetah import AppSpec, Campaign, CampaignCatalog, Sweep, SweepParameter
from repro.savanna import execute_campaign

from conftest import make_cluster


class TestExecuteCampaign:
    def make_manifest(self):
        camp = Campaign("multi", app=AppSpec("a"))
        camp.sweep_group("g1", nodes=2, walltime=200.0).add(
            Sweep([SweepParameter("x", range(4))])
        )
        camp.sweep_group("g2", nodes=2, walltime=200.0).add(
            Sweep([SweepParameter("y", range(2))])
        )
        return camp.to_manifest()

    def test_all_groups_execute(self):
        results = execute_campaign(
            self.make_manifest(), lambda p: 50.0, make_cluster(nodes=2)
        )
        assert set(results) == {"g1", "g2"}
        assert all(r.all_done for r in results.values())

    def test_groups_run_sequentially_on_one_timeline(self):
        results = execute_campaign(
            self.make_manifest(), lambda p: 50.0, make_cluster(nodes=2)
        )
        g1_end = max(o.last_activity() for o in results["g1"].outcomes)
        g2_start = min(o.allocation.start for o in results["g2"].outcomes)
        assert g2_start >= g1_end

    def test_directory_records_all_groups(self, tmp_path):
        from repro.cheetah.directory import CampaignDirectory

        manifest = self.make_manifest()
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        execute_campaign(
            manifest, lambda p: 50.0, make_cluster(nodes=2), directory=directory
        )
        assert directory.summary()["done"] == 6


class TestAggregateProfile:
    def test_weakest_tier_per_gauge(self):
        from repro.gauges import (
            ComponentKind,
            ComponentRegistry,
            Gauge,
            SoftwareMetadata,
            WorkflowComponent,
        )
        from repro.gauges.levels import GranularityTier

        registry = ComponentRegistry()
        registry.register(
            WorkflowComponent(
                name="described",
                software=SoftwareMetadata(
                    kind=ComponentKind.EXECUTABLE, config_template="t"
                ),
            )
        )
        registry.register(WorkflowComponent(name="black-box"))
        aggregate = registry.aggregate_profile()
        # the black box gates everything
        assert aggregate.tier(Gauge.SOFTWARE_GRANULARITY) is GranularityTier.BLACK_BOX
        assert aggregate.as_vector() == (0,) * 6

    def test_single_component_is_its_own_aggregate(self):
        from repro.apps.gwas.workflow import workflow_components_before_after
        from repro.gauges import ComponentRegistry, assess

        registry = ComponentRegistry()
        _before, after = workflow_components_before_after()
        registry.register(after)
        assert registry.aggregate_profile() == assess(after).profile

    def test_empty_registry_rejected(self):
        from repro.gauges import ComponentRegistry

        with pytest.raises(ValueError, match="empty"):
            ComponentRegistry().aggregate_profile()


class TestCatalogTable:
    def test_renders_params_and_metrics(self):
        catalog = CampaignCatalog("c")
        catalog.add("r1", {"x": 1}, {"runtime": 10.0})
        catalog.add("r2", {"x": 2}, {"runtime": 20.0})
        table = catalog.to_table()
        assert "run_id" in table and "x" in table and "runtime" in table
        assert "r1" in table and "20" in table

    def test_metric_subset(self):
        catalog = CampaignCatalog("c")
        catalog.add("r1", {"x": 1}, {"a": 1.0, "b": 2.0})
        table = catalog.to_table(metrics=["b"])
        header = table.splitlines()[0]
        assert "b" in header
        assert " a" not in header

    def test_empty_catalog(self):
        assert "(empty catalog)" in CampaignCatalog("c").to_table()
