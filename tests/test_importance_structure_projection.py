"""Tests for permutation importance, population structure, logspace
parameters, schema projection, and result summaries."""

import numpy as np
import pytest


class TestPermutationImportance:
    def fitted_model(self):
        from repro.apps.irf import RandomForestRegressor

        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (300, 5))
        y = 3.0 * X[:, 2] + 0.1 * rng.standard_normal(300)
        return RandomForestRegressor(n_estimators=15, seed=1).fit(X, y), X, y

    def test_identifies_signal_feature(self):
        from repro.apps.irf import permutation_importance

        model, X, y = self.fitted_model()
        result = permutation_importance(model, X, y, n_repeats=3, seed=2)
        assert result.ranking()[0] == 2
        assert result.importances[2] > 5 * max(
            result.importances[j] for j in (0, 1, 3, 4)
        )

    def test_agrees_with_impurity_importances(self):
        """The model-agnostic measure must agree with the trees' own
        impurity importances on the dominant feature."""
        from repro.apps.irf import permutation_importance

        model, X, y = self.fitted_model()
        result = permutation_importance(model, X, y, n_repeats=3, seed=2)
        assert np.argmax(model.feature_importances_) == result.ranking()[0]

    def test_normalized_sums_to_one(self):
        from repro.apps.irf import permutation_importance

        model, X, y = self.fitted_model()
        result = permutation_importance(model, X, y, n_repeats=2, seed=3)
        assert result.normalized().sum() == pytest.approx(1.0)
        assert np.all(result.normalized() >= 0)

    def test_noise_features_near_zero(self):
        from repro.apps.irf import permutation_importance

        model, X, y = self.fitted_model()
        result = permutation_importance(model, X, y, n_repeats=3, seed=4)
        for j in (0, 1, 3, 4):
            assert abs(result.importances[j]) < 0.2 * result.importances[2]

    def test_validation(self):
        from repro.apps.irf import permutation_importance

        model, X, y = self.fitted_model()
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(ValueError, match="2-D"):
            permutation_importance(model, X[:, 0], y)


class TestPopulationStructure:
    def test_pc1_separates_populations(self):
        from repro.apps.gwas import genotype_pcs, structured_gwas

        G, y, causal, ancestry = structured_gwas(
            n_samples=200, n_snps=300, fst=0.2, seed=1
        )
        pcs = genotype_pcs(G, k=2)
        corr = abs(np.corrcoef(pcs[:, 0], ancestry)[0, 1])
        assert corr > 0.9

    def test_pc_adjustment_removes_ancestry_inflation(self):
        """The textbook result: uncorrected scans of structured data are
        inflated; PC covariates restore calibration."""
        from repro.apps.gwas import genotype_pcs, gwas_scan, structured_gwas

        G, y, causal, ancestry = structured_gwas(
            n_samples=400, n_snps=400, n_causal=0, fst=0.2,
            trait_ancestry_effect=2.0, heritability=0.0, seed=2,
        )
        raw = gwas_scan(G, y)
        adjusted = gwas_scan(G, y, covariates=genotype_pcs(G, k=2))
        # with zero causal SNPs every hit is a false positive
        assert len(raw.significant(0.05)) > len(adjusted.significant(0.05))
        assert len(adjusted.significant(0.05)) <= 2

    def test_variance_explained_front_loaded_under_structure(self):
        from repro.apps.gwas import structured_gwas, variance_explained

        G, _y, _c, _a = structured_gwas(n_samples=200, n_snps=300, fst=0.3, seed=3)
        ve = variance_explained(G, k=5)
        assert ve[0] > 2 * ve[1]  # PC1 carries the population split

    def test_validation(self):
        from repro.apps.gwas import genotype_pcs

        with pytest.raises(ValueError, match="exceeds"):
            genotype_pcs(np.zeros((3, 5)) + np.arange(5), k=10)
        with pytest.raises(ValueError, match="monomorphic"):
            genotype_pcs(np.ones((10, 4)), k=1)


class TestLogspaceParameter:
    def test_log_spacing(self):
        from repro.cheetah import LogspaceParameter

        p = LogspaceParameter("buf", 1.0, 1000.0, 4)
        assert p.values == pytest.approx((1.0, 10.0, 100.0, 1000.0))

    def test_as_int_dedupes(self):
        from repro.cheetah import LogspaceParameter

        p = LogspaceParameter("ranks", 1, 16, 9, as_int=True)
        assert p.values == tuple(sorted(set(p.values)))
        assert all(isinstance(v, int) for v in p.values)

    def test_validation(self):
        from repro.cheetah import LogspaceParameter
        from repro.cheetah.parameters import ParameterError

        with pytest.raises(ParameterError):
            LogspaceParameter("x", 0.0, 10.0, 3)
        with pytest.raises(ParameterError):
            LogspaceParameter("x", 1.0, 10.0, 1)


class TestSchemaProjection:
    def schemas(self):
        from repro.metadata import DataSchema, Field

        source = DataSchema(
            "wide", "1",
            (Field("a", "int64"), Field("b", "float64"), Field("c", "int8")),
        )
        target = DataSchema("narrow", "1", (Field("a", "int64"), Field("c", "int8")))
        return source, target

    def test_projects_subset(self):
        from repro.metadata import project

        source, target = self.schemas()
        out = project({"a": 1, "b": 2.5, "c": 3}, source, target)
        assert out == {"a": 1, "c": 3}

    def test_missing_field_raises_with_name(self):
        from repro.metadata import DataSchema, Field, ProjectionError, project

        source, _ = self.schemas()
        bad_target = DataSchema("t", "1", (Field("z", "int64"),))
        with pytest.raises(ProjectionError, match="missing field 'z'"):
            project({"a": 1}, source, bad_target)

    def test_type_mismatch_raises(self):
        from repro.metadata import DataSchema, Field, ProjectionError, project

        source, _ = self.schemas()
        bad_target = DataSchema("t", "1", (Field("a", "float64"),))
        with pytest.raises(ProjectionError, match="field 'a'"):
            project({"a": 1}, source, bad_target)

    def test_record_missing_declared_field(self):
        from repro.metadata import ProjectionError, project

        source, target = self.schemas()
        with pytest.raises(ProjectionError, match="record lacks"):
            project({"a": 1}, source, target)


class TestResultSummary:
    def test_summary_text(self):
        from conftest import make_cluster

        from repro.cluster.job import Task
        from repro.savanna import PilotExecutor

        tasks = [Task(name=f"t{i}", duration=10.0) for i in range(4)]
        result = PilotExecutor(make_cluster(nodes=2)).run(tasks, nodes=2, walltime=100.0)
        text = result.summary()
        assert "4/4 tasks completed" in text
        assert "allocation 0" in text
