"""Backend registry semantics: registration, kinds, builtin protocols."""

from __future__ import annotations

import pytest

from repro.savanna import (
    available_backends,
    backend_descriptions,
    backend_kind,
    create_executor,
    get_backend,
    register_backend,
    unregister_backend,
)


class FakeExecutor:
    pool_kind = "fake"


class TestRegistration:
    def test_register_and_create(self):
        register_backend("fake", lambda **kw: FakeExecutor(), description="test-only")
        try:
            assert "fake" in available_backends()
            assert isinstance(create_executor("fake"), FakeExecutor)
            assert backend_descriptions()["fake"] == "test-only"
            assert backend_kind("fake") == "simulated"
        finally:
            unregister_backend("fake")
        assert "fake" not in available_backends()

    def test_duplicate_registration_rejected(self):
        register_backend("fake", lambda **kw: FakeExecutor())
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("fake", lambda **kw: FakeExecutor())
        finally:
            unregister_backend("fake")

    def test_replace_true_overwrites(self):
        register_backend("fake", lambda **kw: "first")
        try:
            register_backend("fake", lambda **kw: "second", replace=True)
            assert create_executor("fake") == "second"
        finally:
            unregister_backend("fake")

    def test_builtins_cannot_be_shadowed_silently(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("pilot", lambda **kw: FakeExecutor())

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_backend("fake", lambda **kw: FakeExecutor(), kind="quantum")
        assert "fake" not in available_backends()

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_backend("never-registered")


class TestLookup:
    def test_unknown_backend_message_lists_available(self):
        with pytest.raises(KeyError) as excinfo:
            get_backend("slurm")
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message

    def test_backend_kind_unknown_name(self):
        with pytest.raises(KeyError, match="slurm"):
            backend_kind("slurm")


class TestBuiltins:
    def test_expected_builtins_present(self):
        names = set(available_backends())
        assert {"pilot", "static-sets", "local-threads", "local-processes"} <= names

    def test_builtin_kinds(self):
        assert backend_kind("pilot") == "simulated"
        assert backend_kind("static-sets") == "simulated"
        assert backend_kind("local-threads") == "real"
        assert backend_kind("local-processes") == "real"

    def test_real_builtins_satisfy_real_protocol(self):
        for name in ("local-threads", "local-processes"):
            ex = create_executor(name, max_workers=2)
            assert callable(getattr(ex, "execute"))
            assert callable(getattr(ex, "run"))  # legacy dict-returning face

    def test_real_builtins_pool_choice(self):
        assert create_executor("local-threads").pool == "threads"
        assert create_executor("local-processes").pool == "processes"

    def test_simulated_builtins_satisfy_simulated_protocol(self):
        from conftest import make_cluster

        for name in ("pilot", "static-sets"):
            ex = create_executor(name, cluster=make_cluster(nodes=2))
            assert callable(getattr(ex, "make_run"))
            assert callable(getattr(ex, "run"))
            assert not hasattr(ex, "execute")
