"""Tests for checkpoint-restart across batch allocations."""

import pytest

from repro.apps.simulation import (
    FixedIntervalPolicy,
    OverheadBudgetPolicy,
    RunConfig,
    run_across_allocations,
)


def config(timesteps=50):
    return RunConfig(timesteps=timesteps, grid_n=16)


class TestCrossAllocation:
    def test_completes_across_multiple_allocations(self):
        report = run_across_allocations(
            config(), FixedIntervalPolicy(5), walltime=600.0, queue_wait=300.0, seed=3
        )
        assert report.allocations_used > 1
        assert report.segments[-1].end_step == 50

    def test_durable_progress_is_monotone(self):
        report = run_across_allocations(
            config(), FixedIntervalPolicy(5), walltime=600.0, seed=3
        )
        ends = [s.end_step for s in report.segments]
        assert ends == sorted(ends)

    def test_single_allocation_when_walltime_suffices(self):
        report = run_across_allocations(
            config(timesteps=10), FixedIntervalPolicy(5), walltime=100000.0, seed=1
        )
        assert report.allocations_used == 1
        assert report.lost_steps == 0
        assert not report.segments[0].killed_mid_flight

    def test_walltime_kill_loses_uncheckpointed_tail(self):
        report = run_across_allocations(
            config(), FixedIntervalPolicy(5), walltime=600.0, seed=3
        )
        killed = [s for s in report.segments if s.killed_mid_flight]
        assert killed
        assert report.lost_steps > 0
        # lost work is re-computed: computed > timesteps
        assert report.computed_steps >= 50

    def test_queue_wait_accumulates(self):
        report = run_across_allocations(
            config(), FixedIntervalPolicy(5), walltime=600.0, queue_wait=500.0, seed=3
        )
        assert report.queue_seconds == 500.0 * report.allocations_used
        assert report.total_wall_seconds > report.queue_seconds

    def test_sparse_policy_diverges_loudly(self):
        with pytest.raises(RuntimeError, match="no durable progress"):
            run_across_allocations(
                config(), FixedIntervalPolicy(25), walltime=600.0, seed=3
            )

    def test_budget_policy_survives_short_walltime(self):
        """The overhead-budget policy adapts: it checkpoints often enough
        to retain progress even in short allocations."""
        report = run_across_allocations(
            config(), OverheadBudgetPolicy(0.10), walltime=600.0, seed=3
        )
        assert report.segments[-1].end_step == 50

    def test_deterministic_per_seed(self):
        a = run_across_allocations(config(), FixedIntervalPolicy(5), walltime=700.0, seed=9)
        b = run_across_allocations(config(), FixedIntervalPolicy(5), walltime=700.0, seed=9)
        assert a.total_wall_seconds == b.total_wall_seconds
        assert a.lost_steps == b.lost_steps

    def test_validation(self):
        with pytest.raises(ValueError):
            run_across_allocations(config(), FixedIntervalPolicy(5), walltime=0)
        with pytest.raises(ValueError):
            run_across_allocations(
                config(), FixedIntervalPolicy(5), walltime=10.0, queue_wait=-1
            )

    def test_restart_preserves_numerical_trajectory(self):
        """The correctness contract: a run interrupted by walltime kills
        and restored from checkpoints ends in the *identical* numerical
        state as an uninterrupted run."""
        import numpy as np

        from repro.apps.simulation import GrayScottParams, GrayScottSimulation

        cfg = config(timesteps=30)
        app = GrayScottSimulation(GrayScottParams(n=16), seed=77)
        report = run_across_allocations(
            cfg, FixedIntervalPolicy(4), walltime=400.0, app=app, seed=3
        )
        assert report.allocations_used > 1  # the kill/restore path really ran
        reference = GrayScottSimulation(GrayScottParams(n=16), seed=77)
        reference.step(30)
        assert report.final_state is not None
        assert report.final_state["timestep"] == 30
        assert np.array_equal(report.final_state["u"], reference.u)
        assert np.array_equal(report.final_state["v"], reference.v)

    def test_voided_checkpoint_does_not_corrupt_middleware_stats(self):
        """A write cut off by the walltime must leave the gap counter and
        the write estimate exactly as they were."""
        report = run_across_allocations(
            config(), FixedIntervalPolicy(5), walltime=600.0, seed=3
        )
        # checkpoints_written must equal the surviving write log length
        assert report.checkpoints_written >= 1

    def test_frequent_checkpoints_lose_less_at_kills(self):
        dense = run_across_allocations(
            config(), FixedIntervalPolicy(2), walltime=600.0, seed=3
        )
        sparse = run_across_allocations(
            config(), FixedIntervalPolicy(10), walltime=600.0, seed=3
        )
        assert dense.lost_steps <= sparse.lost_steps
