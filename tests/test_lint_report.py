"""Findings/report semantics and golden-file reporter output.

The renderings are part of the tool's contract (CI systems diff them),
so the exact text and SARIF-lite JSON for a fixed report are pinned as
golden files under ``tests/data/lint/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import Finding, LintReport, Severity, render, render_json, render_text

DATA = Path(__file__).resolve().parent / "data" / "lint"


def fixed_report() -> LintReport:
    findings = [
        Finding("FAIR009", Severity.INFO,
                "parameter 'x' has a single value (1); nothing is swept",
                subject="campaign 'demo'", location="group 'g': sweep 'sweep'"),
        Finding("FAIR001", Severity.ERROR,
                "expands to zero runs (all sweep points pruned or no sweeps added)",
                subject="campaign 'demo'", location="group 'empty'"),
        Finding("FAIR303", Severity.WARNING, "bare `except:` clause",
                subject="gen/post.py", location="line 7"),
        Finding("FAIR005", Severity.WARNING,
                "runs carry 2 different parameter-name sets: [('x',), ('y',)]",
                subject="campaign 'demo'", location="group 'g'"),
    ]
    return LintReport.of(findings, suppress={"FAIR005"})


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    @pytest.mark.parametrize("text,expected", [
        ("error", Severity.ERROR),
        ("warn", Severity.WARNING),
        ("warning", Severity.WARNING),
        ("INFO", Severity.INFO),
    ])
    def test_parse(self, text, expected):
        assert Severity.parse(text) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestReportSemantics:
    def test_deterministic_order_severity_then_rule_id(self):
        report = fixed_report()
        assert [f.rule_id for f in report.findings] == [
            "FAIR001", "FAIR303", "FAIR009"]

    def test_suppressed_routed_aside_not_discarded(self):
        report = fixed_report()
        assert [f.rule_id for f in report.suppressed] == ["FAIR005"]
        assert "FAIR005" not in report.rule_ids()

    def test_counts_and_threshold(self):
        report = fixed_report()
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        assert report.exceeds(Severity.ERROR)
        assert report.exceeds(Severity.INFO)
        assert not LintReport().exceeds(Severity.INFO)

    def test_merged_keeps_global_order(self):
        a = LintReport.of([Finding("FAIR009", Severity.INFO, "m")])
        b = LintReport.of([Finding("FAIR001", Severity.ERROR, "m")])
        merged = a.merged(b)
        assert [f.rule_id for f in merged.findings] == ["FAIR001", "FAIR009"]

    def test_empty_report_is_falsy(self):
        assert not LintReport()
        assert fixed_report()


class TestGoldenFiles:
    def test_text_matches_golden(self):
        expected = (DATA / "report.txt").read_text()
        assert render_text(fixed_report(), verbose=True) + "\n" == expected

    def test_json_matches_golden(self):
        expected = (DATA / "report.json").read_text()
        assert render_json(fixed_report()) + "\n" == expected

    def test_json_is_stable_and_parseable(self):
        first = render_json(fixed_report())
        second = render_json(fixed_report())
        assert first == second
        doc = json.loads(first)
        assert doc["version"] == "repro.lint/1"
        assert {r["id"] for r in doc["tool"]["rules"]} == {
            "FAIR001", "FAIR303", "FAIR009", "FAIR005"}

    def test_render_dispatch(self):
        report = fixed_report()
        assert render(report, "text") == render_text(report)
        assert render(report, "json") == render_json(report)
        with pytest.raises(ValueError, match="unknown format"):
            render(report, "yaml")
