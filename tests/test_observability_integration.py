"""Integration: the execution layers emit a well-formed event stream.

A pilot-executor campaign recorded end to end must produce a
contract-clean stream (monotone per-bus timestamps, balanced spans),
export as Chrome ``trace_event`` dicts, drive nonzero task counters,
reconstruct utilization identically to the live node objects, and feed
the Software Provenance gauge.
"""

import pytest

from repro.cluster.job import Task
from repro.cluster.trace import UtilizationTrace
from repro.gauges.levels import ProvenanceTier
from repro.observability import (
    ALLOC,
    ALLOC_SUBMITTED,
    BEGIN,
    CAMPAIGN,
    END,
    GROUP,
    NODE_BUSY,
    NODE_IDLE,
    TASK,
    TASK_REQUEUED,
    TraceRecorder,
    observed_provenance_tier,
    observed_software_metadata,
    provenance_store_from_trace,
    validate_event_stream,
)
from repro.savanna import PilotExecutor

from conftest import make_cluster


def run_recorded_campaign(mttf=None, n_tasks=10, nodes=4, walltime=400.0):
    cluster = make_cluster(nodes=nodes, mttf=mttf)
    recorder = TraceRecorder().attach(cluster.bus)
    tasks = [
        Task(name=f"t{i}", duration=30.0 + 5 * i, payload={"i": i})
        for i in range(n_tasks)
    ]
    result = PilotExecutor(cluster).run(
        tasks, nodes=nodes, walltime=walltime, max_allocations=3
    )
    return cluster, recorder, result


class TestPilotCampaignStream:
    def test_stream_is_well_formed(self):
        _, recorder, result = run_recorded_campaign()
        assert result.all_done
        validate_event_stream(recorder.events)  # monotone, balanced spans

    def test_timestamps_monotone_per_bus(self):
        _, recorder, _ = run_recorded_campaign()
        times = [e.time for e in recorder.events]
        assert times == sorted(times)  # single cluster: globally monotone
        seqs = [e.seq for e in recorder.events]
        assert seqs == sorted(set(seqs))

    def test_taxonomy_coverage(self):
        _, recorder, _ = run_recorded_campaign()
        names = {e.name for e in recorder.events}
        assert {CAMPAIGN, ALLOC, ALLOC_SUBMITTED, TASK, NODE_BUSY, NODE_IDLE} <= names

    def test_task_spans_nest_inside_alloc_spans(self):
        _, recorder, _ = run_recorded_campaign()
        open_allocs = 0
        for e in recorder.events:
            if e.name == ALLOC:
                open_allocs += 1 if e.phase == BEGIN else -1
            elif e.name == TASK:
                assert open_allocs > 0, "task event outside any alloc span"

    def test_campaign_span_brackets_everything(self):
        _, recorder, _ = run_recorded_campaign()
        assert recorder.events[0].name == CAMPAIGN
        assert recorder.events[0].phase == BEGIN
        assert recorder.events[-1].name == CAMPAIGN
        assert recorder.events[-1].phase == END
        assert recorder.events[-1].fields["completed"] == 10

    def test_counters_nonzero_and_consistent(self):
        _, recorder, result = run_recorded_campaign()
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["tasks.launched"] >= 10
        assert counters["tasks.done"] == len(result.completed) == 10
        assert counters["allocations.granted"] == len(result.outcomes)
        assert counters["allocations.granted"] == counters["allocations.ended"]

    def test_chrome_trace_format(self, tmp_path):
        import json

        _, recorder, _ = run_recorded_campaign()
        path = recorder.write_chrome_trace(tmp_path / "campaign.json")
        trace = json.loads(path.read_text())
        assert isinstance(trace, list) and trace
        for entry in trace:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(entry)
            assert entry["ph"] in ("B", "E", "i")
        # B/E pairing requires matching (pid, tid) per task span.
        task_rows = [e for e in trace if e["name"] == "task"]
        by_id = {}
        for e in task_rows:
            by_id.setdefault(e["args"]["task_id"], []).append(e)
        for entries in by_id.values():
            assert {e["tid"] for e in entries} == {entries[0]["tid"]}

    def test_failure_requeue_emits_events(self):
        _, recorder, result = run_recorded_campaign(mttf=2000.0, n_tasks=20)
        counters = recorder.metrics.snapshot()["counters"]
        if counters.get("tasks.failed", 0):  # mttf makes failures overwhelmingly likely
            assert counters["tasks.requeued"] >= 1
            requeues = [e for e in recorder.events if e.name == TASK_REQUEUED]
            assert all(e.fields["retries"] >= 1 for e in requeues)
        validate_event_stream(recorder.events)


class TestUtilizationFromEvents:
    def test_from_events_equals_from_nodes(self):
        cluster, recorder, _ = run_recorded_campaign()
        end = cluster.now
        live = UtilizationTrace.from_nodes(cluster.pool.nodes, 0.0, end)
        replayed = UtilizationTrace.from_events(recorder.events, 0.0, end)
        assert [(r.node_index, r.intervals) for r in live.rows] == [
            (r.node_index, r.intervals) for r in replayed.rows
        ]
        assert live.utilization() == pytest.approx(replayed.utilization())

    def test_from_events_ignores_other_names(self):
        _, recorder, _ = run_recorded_campaign()
        only_nodes = [
            e for e in recorder.events if e.name in (NODE_BUSY, NODE_IDLE)
        ]
        full = UtilizationTrace.from_events(recorder.events, 0.0, 1000.0)
        filtered = UtilizationTrace.from_events(only_nodes, 0.0, 1000.0)
        assert [(r.node_index, r.intervals) for r in full.rows] == [
            (r.node_index, r.intervals) for r in filtered.rows
        ]

    def test_unbalanced_stream_rejected(self):
        from repro.observability import Event

        events = [Event(NODE_IDLE, 5.0, fields={"node": 0})]
        with pytest.raises(ValueError, match="without matching busy"):
            UtilizationTrace.from_events(events, 0.0, 10.0)


class TestProvenanceFromTrace:
    def test_store_holds_one_record_per_attempt(self):
        _, recorder, result = run_recorded_campaign()
        store = provenance_store_from_trace(recorder.events)
        assert len(store) == recorder.metrics.snapshot()["counters"]["tasks.launched"]
        record = store.query(component="t3")[0]
        assert record.outcome == "done"
        assert record.parameters == {"i": 3}
        assert record.elapsed > 0

    def test_observed_tier_ladder(self):
        from repro.metadata.provenance import ExportPolicy

        _, recorder, _ = run_recorded_campaign()
        assert observed_provenance_tier([]) is ProvenanceTier.NONE
        task_only = [e for e in recorder.events if e.name == TASK]
        assert observed_provenance_tier(task_only) is ProvenanceTier.EXECUTION_LOGS
        assert (
            observed_provenance_tier(recorder.events)
            is ProvenanceTier.CAMPAIGN_KNOWLEDGE
        )
        assert (
            observed_provenance_tier(recorder.events, export_policy=ExportPolicy())
            is ProvenanceTier.EXPORTABLE
        )

    def test_assess_earns_the_observed_tier(self):
        from repro.gauges import Gauge, assess
        from repro.gauges.model import WorkflowComponent

        _, recorder, _ = run_recorded_campaign()
        software = observed_software_metadata(recorder.events)
        component = WorkflowComponent(name="pilot-campaign", software=software)
        profile = assess(component).profile
        assert profile.tier(Gauge.SOFTWARE_PROVENANCE) is observed_provenance_tier(
            recorder.events
        )


class TestManifestExecutionStream:
    def test_group_and_composition_events(self):
        from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep
        from repro.savanna import execute_manifest

        cluster = make_cluster(nodes=4)
        recorder = TraceRecorder().attach(cluster.bus)
        campaign = Campaign("obs-study", app=AppSpec("sim"))
        group = campaign.sweep_group("grid", nodes=4, walltime=600.0)
        group.add(Sweep([RangeParameter("x", 0, 6)]))
        manifest = campaign.to_manifest(bus=cluster.bus)
        result = execute_manifest(
            manifest, lambda p: 40.0, cluster, backend="pilot", max_allocations=2
        )
        assert result.all_done
        validate_event_stream(recorder.events)
        names = [e.name for e in recorder.events]
        assert names[0] == "campaign.composed"
        groups = [e for e in recorder.events if e.name == GROUP]
        assert [e.phase for e in groups] == [BEGIN, END]
        assert groups[0].fields["campaign"] == "obs-study"
        assert groups[0].fields["runs"] == 6
        assert groups[1].fields["completed"] == 6
