"""Crash-safety tests: torn-write immunity, locked status updates, tagged codec.

Three campaign-directory durability bugs are pinned here:

1. ``status.json`` / ``result.json`` / ``report.json`` were written with
   a bare ``write_text`` — a driver killed mid-write left torn JSON that
   silently broke resume.  Now every metadata write is temp file + fsync
   + ``os.replace``; a reader sees the old complete file or the new one,
   never a prefix (proved by SIGKILLing a writer subprocess mid-loop).
2. ``set_status``/``update_status`` were an unlocked read-modify-write —
   two concurrent submissions could drop each other's transitions.  Now
   the cycle runs under a per-directory lock and concurrent updates
   reconcile exactly (hypothesis, threads over disjoint run sets).
3. ``_jsonable`` fell back to ``repr`` — numpy values silently persisted
   as non-round-trippable strings.  Now known types round-trip exactly
   via the tagged codec, and a truly unserializable value raises.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import UnserializableValueError, atomic_write_text, path_lock
from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, RunStatus


def make_directory(tmp_path, n=8, campaign="crash"):
    camp = Campaign(campaign, app=AppSpec("app"))
    sg = camp.sweep_group("g", nodes=1, walltime=60.0)
    sg.add(Sweep([SweepParameter("x", range(n))]))
    directory = CampaignDirectory(tmp_path, camp.to_manifest())
    directory.create()
    return directory


class TestAtomicWrites:
    def test_reader_never_sees_torn_file_under_sigkill(self, tmp_path):
        """SIGKILL a subprocess hammering atomic_write_text: the target
        must always parse as one of the complete payloads."""
        target = tmp_path / "status.json"
        script = textwrap.dedent(
            """
            import json, sys
            from repro._util import atomic_write_text
            path = sys.argv[1]
            i = 0
            while True:
                payload = {"generation": i, "runs": {f"run-{j}": "done" for j in range(50)}, "complete": True}
                atomic_write_text(path, json.dumps(payload), fsync=False)
                i += 1
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        for _ in range(3):
            proc = subprocess.Popen(
                [sys.executable, "-c", script, str(target)], env=env
            )
            # let it get through some writes, then kill it mid-flight
            deadline = time.time() + 5.0
            while not target.exists() and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            data = json.loads(target.read_text())  # parses => not torn
            assert data["complete"] is True
            assert len(data["runs"]) == 50

    def test_failed_replace_leaves_original_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "file.json"
        atomic_write_text(target, '{"v": 1}')

        def boom(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk gone"):
            atomic_write_text(target, '{"v": 2}')
        monkeypatch.undo()
        assert json.loads(target.read_text()) == {"v": 1}
        # the failed write's temp file was cleaned up
        assert list(tmp_path.glob(".file.json.*.tmp")) == []

    def test_status_report_result_files_written_atomically(self, tmp_path):
        """Every .cheetah metadata writer goes through atomic_write_text
        (no bare write_text truncation window)."""
        directory = make_directory(tmp_path)
        directory.set_status("g/run-0000", RunStatus.DONE)
        directory.write_run_result(
            "g/run-0000",
            {"run_id": "g/run-0000", "status": "done", "value": 1.0,
             "error": None, "traceback": None, "elapsed": 0.1,
             "attempts": 1, "seed": 0},
        )
        directory.write_report([{"campaign": "crash", "group": "g", "makespan": 1.0}])
        # all parse cleanly and no temp residue is left behind
        meta = directory.root / CampaignDirectory.METADATA_DIR
        json.loads((meta / "status.json").read_text())
        json.loads((meta / "report.json").read_text())
        json.loads((directory.run_dir("g/run-0000") / "result.json").read_text())
        assert list(meta.glob("*.tmp")) == []


class TestConcurrentStatusUpdates:
    @settings(deadline=None, max_examples=15)
    @given(
        n_threads=st.integers(2, 4),
        per_thread=st.integers(1, 4),
        repeats=st.integers(1, 3),
    )
    def test_concurrent_updates_reconcile_exactly(
        self, tmp_path_factory, n_threads, per_thread, repeats
    ):
        """Threads updating disjoint run sets concurrently must all land:
        the old unlocked read-modify-write dropped transitions."""
        tmp_path = tmp_path_factory.mktemp("status")
        n_runs = n_threads * per_thread
        directory = make_directory(tmp_path, n=n_runs)
        run_ids = [run.run_id for run in directory.manifest.runs]
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(mine):
            try:
                barrier.wait()
                for _ in range(repeats):
                    directory.update_status({rid: RunStatus.RUNNING for rid in mine})
                    directory.update_status({rid: RunStatus.DONE for rid in mine})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(
                target=worker, args=(run_ids[i * per_thread:(i + 1) * per_thread],)
            )
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        status = directory.read_status()
        assert all(status[rid] is RunStatus.DONE for rid in run_ids)

    def test_update_status_rejects_unknown_run(self, tmp_path):
        directory = make_directory(tmp_path)
        with pytest.raises(KeyError, match="unknown run_id"):
            directory.update_status({"g/run-9999": RunStatus.DONE})

    def test_path_lock_is_reentrant(self, tmp_path):
        target = tmp_path / "file.json"
        with path_lock(target):
            with path_lock(target):  # re-entry must not flock-deadlock
                atomic_write_text(target, "{}")
        assert target.exists()


class TestTaggedEncoding:
    def roundtrip(self, tmp_path, value):
        directory = make_directory(tmp_path)
        rid = directory.manifest.runs[0].run_id
        directory.write_run_result(
            rid,
            {"run_id": rid, "status": "done", "value": value, "error": None,
             "traceback": None, "elapsed": 0.1, "attempts": 1, "seed": 0},
        )
        return directory.read_run_result(rid)["value"]

    def test_numpy_scalars_round_trip_exactly(self, tmp_path):
        value = {
            "f64": np.float64(1.5), "i32": np.int32(-7), "b": np.bool_(True)
        }
        out = self.roundtrip(tmp_path, value)
        assert out == {"f64": 1.5, "i32": -7, "b": True}

    def test_numpy_array_round_trips_with_dtype(self, tmp_path):
        value = np.arange(6, dtype=np.float32).reshape(2, 3)
        out = self.roundtrip(tmp_path, value)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, value)

    def test_complex_bytes_set_path_round_trip(self, tmp_path):
        value = {
            "z": complex(1.0, -2.5),
            "raw": b"\x00\x01\xff",
            "tags": {3, 1, 2},
            "where": Path("/data/out"),
        }
        out = self.roundtrip(tmp_path, value)
        assert out["z"] == complex(1.0, -2.5)
        assert out["raw"] == b"\x00\x01\xff"
        assert out["tags"] == {1, 2, 3}
        assert out["where"] == Path("/data/out")

    def test_unserializable_value_raises_instead_of_repr(self, tmp_path):
        """The old repr fallback silently corrupted records; now the
        write refuses."""
        directory = make_directory(tmp_path)
        rid = directory.manifest.runs[0].run_id
        with pytest.raises(UnserializableValueError):
            directory.write_run_result(
                rid,
                {"run_id": rid, "status": "done", "value": object(),
                 "error": None, "traceback": None, "elapsed": 0.1,
                 "attempts": 1, "seed": 0},
            )
        # nothing half-written
        assert not (directory.run_dir(rid) / "result.json").exists()

    def test_store_rejects_unserializable_value_at_write(self, tmp_path):
        from repro.store import CampaignStore

        directory = make_directory(tmp_path)
        with directory.open_store() as store:
            assert isinstance(store, CampaignStore)
            with pytest.raises(UnserializableValueError):
                store.add_result(
                    directory.manifest.campaign,
                    directory.manifest.runs[0].run_id,
                    value=object(),
                )
