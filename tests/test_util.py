"""Tests for repro._util: rng plumbing, validation, table rendering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    ValidationError,
    as_generator,
    check_fraction,
    check_nonnegative,
    check_positive,
    check_type,
    format_series,
    format_table,
    spawn_children,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(as_generator(ss), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="seed must be"):
            as_generator("not-a-seed")


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_children(7, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_int_seed(self):
        a1, b1 = spawn_children(9, 2)
        a2, b2 = spawn_children(9, 2)
        assert np.array_equal(a1.random(5), a2.random(5))
        assert np.array_equal(b1.random(5), b2.random(5))

    def test_from_generator_derives(self):
        g = np.random.default_rng(3)
        kids = spawn_children(g, 2)
        assert len(kids) == 2


class TestValidators:
    def test_check_positive_accepts(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ValidationError, match="x must be > 0"):
            check_positive("x", value)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValidationError):
            check_nonnegative("x", -1e-9)

    @pytest.mark.parametrize("value", [0, 0.5, 1])
    def test_check_fraction_accepts(self, value):
        check_fraction("x", value)

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_check_fraction_rejects(self, value):
        with pytest.raises(ValidationError):
            check_fraction("x", value)

    def test_check_type(self):
        check_type("x", 5, int)
        check_type("x", 5, (int, float))
        with pytest.raises(ValidationError, match="x must be int"):
            check_type("x", "5", int)


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert len(lines) == 4
        # all rows same width
        assert len({len(l) for l in lines}) == 1

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456789]])
        assert "1.235" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row 0 has 1 cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_series(self):
        text = format_series("s", [1, 2], [3, 4], xlabel="x", ylabel="y")
        assert text.startswith("s\n")
        assert "x" in text and "y" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            format_series("s", [1], [1, 2])


@given(st.lists(st.lists(st.integers(), min_size=2, max_size=2), max_size=20))
def test_format_table_property_all_lines_equal_width(rows):
    text = format_table(["col1", "col2"], rows)
    widths = {len(line) for line in text.splitlines()}
    assert len(widths) == 1
