"""Tests for the real-execution engine and its drive path.

App callables here are module-level so the process pool can pickle them;
flaky/interrupting behaviour is coordinated through marker files (shared
filesystem state works across both threads and processes).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, RunStatus, resolve_campaign_dir
from repro.observability import (
    CAMPAIGN_INTERRUPTED,
    GROUP_RESUMED,
    TASK_RETRY,
    TASK_TIMEOUT,
    validate_event_stream,
)
from repro.resilience import FixedDelayPolicy, RetryPolicy
from repro.savanna import RealExecutor, execute_manifest, seed_for_run
from repro.savanna.realexec import wall_clock_bus


def make_manifest(values=(1, 2, 3), name="realexec"):
    camp = Campaign(name, app=AppSpec("square"))
    sg = camp.sweep_group("g", nodes=1, walltime=60.0)
    sg.add(Sweep([SweepParameter("x", values)]))
    return camp.to_manifest()


# -- module-level apps (picklable) --------------------------------------------


def square(params):
    return params["x"] ** 2


def draw_random(params):
    return random.random()


def fail_on_two(params):
    if params["x"] == 2:
        raise ValueError("boom")
    return params["x"]


def flaky_once(params):
    """Fails the first time each x is tried; succeeds after (marker file)."""
    marker = Path(params["dir"]) / f"tried-{params['x']}"
    if not marker.exists():
        marker.write_text("")
        raise RuntimeError("transient")
    return params["x"]


def sleepy(params):
    time.sleep(params.get("sleep", 0.5))
    return params["x"]


def interrupt_on_two(params):
    """Raises KeyboardInterrupt for x==2 unless the marker already exists."""
    marker = Path(params["dir"]) / "interrupted-once"
    if params["x"] == 2 and not marker.exists():
        marker.write_text("")
        raise KeyboardInterrupt
    return params["x"] * 10


class TestEngine:
    @pytest.mark.parametrize("pool", ["threads", "processes"])
    def test_runs_every_configuration(self, pool):
        result = RealExecutor(max_workers=2, pool=pool).execute(make_manifest(), square)
        assert result.all_done and not result.interrupted
        assert result.values() == {
            "g/run-0000": 1,
            "g/run-0001": 4,
            "g/run-0002": 9,
        }

    @pytest.mark.parametrize("pool", ["threads", "processes"])
    def test_deterministic_per_run_seeding(self, pool):
        man = make_manifest()
        a = RealExecutor(max_workers=2, pool=pool, seed=7).execute(man, draw_random)
        b = RealExecutor(max_workers=2, pool=pool, seed=7).execute(man, draw_random)
        assert a.values() == b.values()  # same seed -> identical draws
        assert len(set(a.values().values())) == 3  # distinct seeds per run
        c = RealExecutor(max_workers=2, pool=pool, seed=8).execute(man, draw_random)
        assert c.values() != a.values()

    def test_seeding_identical_across_pools(self):
        man = make_manifest()
        t = RealExecutor(pool="threads", seed=3).execute(man, draw_random)
        p = RealExecutor(pool="processes", seed=3).execute(man, draw_random)
        assert t.values() == p.values()

    def test_seed_for_run_is_stable(self):
        assert seed_for_run(0, "g/run-0001") == seed_for_run(0, "g/run-0001")
        assert seed_for_run(0, "g/run-0001") != seed_for_run(1, "g/run-0001")

    @pytest.mark.parametrize("pool", ["threads", "processes"])
    def test_chunked_submission(self, pool):
        man = make_manifest(values=tuple(range(7)))
        result = RealExecutor(max_workers=2, pool=pool, chunk_size=3).execute(
            man, square
        )
        assert result.all_done
        assert result.values()["g/run-0006"] == 36

    def test_failure_captures_traceback(self):
        result = RealExecutor(max_workers=2).execute(make_manifest(), fail_on_two)
        failed = result.results["g/run-0001"]
        assert failed.status == "failed"
        assert failed.error == "ValueError: boom"
        assert "Traceback (most recent call last)" in failed.traceback
        assert 'raise ValueError("boom")' in failed.traceback
        assert result.results["g/run-0000"].status == "done"

    def test_failure_traceback_crosses_process_boundary(self):
        result = RealExecutor(max_workers=2, pool="processes").execute(
            make_manifest(), fail_on_two
        )
        assert "ValueError: boom" in result.results["g/run-0001"].traceback

    @pytest.mark.parametrize("pool", ["threads", "processes"])
    def test_retry_policy_gives_second_attempt(self, pool, tmp_path):
        camp = Campaign("flaky", app=AppSpec("f"))
        sg = camp.sweep_group("g", nodes=1, walltime=60.0)
        sg.add(
            Sweep(
                [
                    SweepParameter("x", (1, 2)),
                    SweepParameter("dir", (str(tmp_path),)),
                ]
            )
        )
        man = camp.to_manifest()
        bus = wall_clock_bus()
        events = []
        bus.subscribe(events.append)
        result = RealExecutor(
            max_workers=2,
            pool=pool,
            retry_policy=FixedDelayPolicy(max_retries=1, delay_seconds=0.0),
        ).execute(man, flaky_once, bus=bus)
        assert result.all_done
        assert all(r.attempts == 2 for r in result.results.values())
        assert sum(e.name == TASK_RETRY for e in events) == 2
        validate_event_stream(events)

    def test_no_retry_by_default(self, tmp_path):
        camp = Campaign("flaky", app=AppSpec("f"))
        sg = camp.sweep_group("g", nodes=1, walltime=60.0)
        sg.add(
            Sweep(
                [SweepParameter("x", (1,)), SweepParameter("dir", (str(tmp_path),))]
            )
        )
        result = RealExecutor(max_workers=1).execute(camp.to_manifest(), flaky_once)
        assert result.results["g/run-0000"].status == "failed"
        assert result.results["g/run-0000"].attempts == 1

    def test_per_attempt_timeout(self):
        camp = Campaign("slow", app=AppSpec("s"))
        sg = camp.sweep_group("g", nodes=1, walltime=60.0)
        sg.add(
            Sweep([SweepParameter("x", (1,)), SweepParameter("sleep", (0.4,))])
        )
        bus = wall_clock_bus()
        events = []
        bus.subscribe(events.append)
        result = RealExecutor(
            max_workers=1, retry_policy=RetryPolicy(max_retries=0, task_timeout=0.05)
        ).execute(camp.to_manifest(), sleepy, bus=bus)
        run = result.results["g/run-0000"]
        assert run.status == "failed"
        assert "TimeoutError" in run.error
        assert any(e.name == TASK_TIMEOUT for e in events)
        validate_event_stream(events)

    def test_duplicate_run_ids_raise(self):
        from types import SimpleNamespace

        from repro.cheetah.manifest import RunSpec

        run = RunSpec(run_id="g/run-0000", group="g", parameters={"x": 1})
        fake = SimpleNamespace(campaign="dup", runs=(run, run))
        with pytest.raises(ValueError, match="duplicate run_ids"):
            RealExecutor().execute(fake, square)

    def test_keyboard_interrupt_returns_partial_results(self, tmp_path):
        camp = Campaign("ki", app=AppSpec("f"))
        sg = camp.sweep_group("g", nodes=1, walltime=60.0)
        sg.add(
            Sweep(
                [
                    SweepParameter("x", (1, 2, 3, 4)),
                    SweepParameter("dir", (str(tmp_path),)),
                ]
            )
        )
        bus = wall_clock_bus()
        events = []
        bus.subscribe(events.append)
        # One worker -> deterministic order: run-0000 completes, run-0001
        # raises KeyboardInterrupt, runs 2-3 never start.
        result = RealExecutor(max_workers=1).execute(
            camp.to_manifest(), interrupt_on_two, bus=bus
        )
        assert result.interrupted
        assert result.results["g/run-0000"].status == "done"
        assert result.results["g/run-0001"].status == "interrupted"
        assert result.results["g/run-0002"].status == "interrupted"
        assert result.results["g/run-0003"].status == "interrupted"
        assert any(e.name == CAMPAIGN_INTERRUPTED for e in events)
        validate_event_stream(events)

    def test_event_stream_is_well_formed(self):
        bus = wall_clock_bus()
        events = []
        bus.subscribe(events.append)
        RealExecutor(max_workers=2).execute(make_manifest(), square, bus=bus)
        validate_event_stream(events)
        names = [e.name for e in events]
        assert names.count("campaign") == 2  # begin + end
        assert names.count("alloc") == 2
        assert names.count("task") == 6  # 3 runs x begin/end

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError, match="pool"):
            RealExecutor(pool="fibers")

    def test_unpicklable_value_is_reported_not_fatal(self):
        result = RealExecutor(max_workers=1, pool="processes").execute(
            make_manifest(values=(1,)), make_unpicklable
        )
        run = result.results["g/run-0000"]
        assert run.status == "failed"
        assert run.error  # a clear per-run error, not a crashed campaign
        assert "unpicklable return value" in run.error  # and a named one

    def test_unpicklable_parameter_is_named(self):
        import threading

        man = make_manifest(values=(1,), name="bad-param")
        for run in man.runs:
            run.parameters["lock"] = threading.Lock()
        with pytest.raises(TypeError, match=r"'lock' \(_thread\.lock\)"):
            RealExecutor(max_workers=1, pool="processes").execute(man, square)
        # threads need no pickling: the same campaign runs fine
        result = RealExecutor(max_workers=1, pool="threads").execute(man, square)
        assert result.all_done


def make_unpicklable(params):
    return lambda: params["x"]  # lambdas do not pickle


# -- the drive path -----------------------------------------------------------


class TestDriveRealBackends:
    def test_execute_manifest_local_processes_with_report(self, tmp_path):
        man = make_manifest(values=(1, 2, 3, 4), name="drive-real")
        result = execute_manifest(
            man,
            backend="local-processes",
            app_fn=square,
            directory=tmp_path,
            report=True,
            max_workers=2,
        )
        assert result.all_done
        directory = resolve_campaign_dir(tmp_path / "drive-real")
        assert all(s is RunStatus.DONE for s in directory.read_status().values())
        reports = directory.read_report()
        assert len(reports) == 1
        assert reports[0]["critical_path"]  # a real wall-clock critical path
        assert reports[0]["makespan"] > 0
        stored = directory.read_run_result("g/run-0001")
        assert stored["status"] == "done" and stored["value"] == 4

    def test_resume_skips_done_runs(self, tmp_path):
        man = make_manifest(values=(1, 2, 3), name="resume-real")
        directory = CampaignDirectory(tmp_path, man)
        directory.create()
        directory.set_status("g/run-0000", RunStatus.DONE)
        bus = wall_clock_bus()
        events = []
        bus.subscribe(events.append)
        result = execute_manifest(
            man,
            backend="local-threads",
            app_fn=square,
            directory=directory,
            resume=True,
            bus=bus,
        )
        assert set(result.results) == {"g/run-0001", "g/run-0002"}
        resumed = [e for e in events if e.name == GROUP_RESUMED]
        assert resumed and resumed[0].fields["skipped"] == 1
        assert all(
            s is RunStatus.DONE
            for s in resolve_campaign_dir(directory.root).read_status().values()
        )

    def test_interrupt_then_resume_completes_pending(self, tmp_path):
        campaign_root = tmp_path / "end-point"
        camp = Campaign("ki-resume", app=AppSpec("f"))
        sg = camp.sweep_group("g", nodes=1, walltime=60.0)
        sg.add(
            Sweep(
                [
                    SweepParameter("x", (1, 2, 3, 4)),
                    SweepParameter("dir", (str(tmp_path),)),
                ]
            )
        )
        man = camp.to_manifest()
        first = execute_manifest(
            man,
            backend="local-threads",
            app_fn=interrupt_on_two,
            directory=campaign_root,
            max_workers=1,
        )
        assert first.interrupted
        assert first.results["g/run-0000"].status == "done"
        directory = resolve_campaign_dir(campaign_root / "ki-resume")
        status = directory.read_status()
        assert status["g/run-0000"] is RunStatus.DONE
        assert status["g/run-0001"] is RunStatus.PENDING

        second = execute_manifest(
            man,
            backend="local-threads",
            app_fn=interrupt_on_two,
            directory=campaign_root,
            resume=True,
            max_workers=1,
        )
        # Exactly the pending set re-ran, and the campaign completed.
        assert set(second.results) == {"g/run-0001", "g/run-0002", "g/run-0003"}
        assert second.all_done
        status = resolve_campaign_dir(campaign_root / "ki-resume").read_status()
        assert all(s is RunStatus.DONE for s in status.values())

    def test_real_backend_requires_app_fn(self):
        with pytest.raises(ValueError, match="app_fn"):
            execute_manifest(make_manifest(), backend="local-threads")

    def test_simulated_backend_requires_cluster(self):
        with pytest.raises(ValueError, match="simulated"):
            execute_manifest(make_manifest(), backend="pilot", lint=False)

    def test_lint_gate_refuses_bad_campaign(self, tmp_path):
        from repro.lint.engine import CampaignLintError

        camp = Campaign("lintfail", app=AppSpec("f"))
        sg = camp.sweep_group("g", nodes=1, walltime=60.0)
        sg.add(Sweep([SweepParameter("x", (1, 2))]))
        man = camp.to_manifest()
        # An empty-group manifest trips FAIR001; simplest hard ERROR here:
        # oversubscription is cluster-dependent, so use a duplicated sweep
        # point instead via direct manifest surgery.
        from repro.cheetah.manifest import CampaignManifest, RunSpec

        bad = CampaignManifest(
            campaign="lintfail",
            app=man.app,
            runs=(
                RunSpec(run_id="g/run-0000", group="g", parameters={"x": 1}),
                RunSpec(run_id="g/run-0001", group="g", parameters={"x": 1}),
            ),
            groups=man.groups,
        )
        with pytest.raises(CampaignLintError):
            execute_manifest(bad, backend="local-threads", app_fn=square)

    def test_checkpoint_journal_tolerates_torn_final_line(self, tmp_path):
        from repro.resilience.checkpoint import CampaignCheckpoint

        man = make_manifest(values=(1, 2), name="torn")
        directory = CampaignDirectory(tmp_path, man)
        directory.create()
        checkpoint = CampaignCheckpoint(directory)
        checkpoint.record("g/run-0000", RunStatus.DONE, time=1.0)
        journal = directory.root / ".cheetah" / "journal.jsonl"
        with journal.open("a") as fh:
            fh.write('{"run": "g/run-0001", "sta')  # SIGKILL mid-write
        assert checkpoint.completed() == {"g/run-0000"}
        assert checkpoint.pending() == {"g/run-0001"}

    def test_checkpoint_journal_rejects_interior_corruption(self, tmp_path):
        from repro.resilience.checkpoint import CampaignCheckpoint

        man = make_manifest(values=(1, 2), name="corrupt")
        directory = CampaignDirectory(tmp_path, man)
        directory.create()
        checkpoint = CampaignCheckpoint(directory)
        journal = directory.root / ".cheetah" / "journal.jsonl"
        journal.write_text(
            'not json at all\n'
            + json.dumps({"run": "g/run-0000", "status": "done", "time": 1.0})
            + "\n"
        )
        with pytest.raises(json.JSONDecodeError):
            checkpoint.journal_entries()


class TestPolicyNormalization:
    def test_as_policy_none_means_no_retry(self):
        from repro.resilience.policy import as_policy

        policy = as_policy(None)
        assert policy.max_retries == 0
        assert not policy.allows(0)
