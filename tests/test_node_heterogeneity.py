"""Tests for per-node speed heterogeneity."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.cluster.job import Task
from repro.cluster.node import Node, NodePool
from repro.savanna import PilotExecutor, StaticSetExecutor


def hetero_cluster(nodes=4, sigma=0.0, seed=7):
    spec = ClusterSpec(
        nodes=nodes,
        queue_sigma=0.0,
        queue_median_wait=0.0,
        node_mttf=None,
        fs_load=None,
        node_speed_sigma=sigma,
    )
    return SimulatedCluster(spec, seed=seed)


class TestNodeSpeeds:
    def test_default_homogeneous(self):
        cluster = hetero_cluster(sigma=0.0)
        assert all(n.speed == 1.0 for n in cluster.pool.nodes)

    def test_sigma_produces_spread(self):
        cluster = hetero_cluster(nodes=32, sigma=0.4)
        speeds = [n.speed for n in cluster.pool.nodes]
        assert len({round(s, 6) for s in speeds}) > 10
        assert all(s > 0 for s in speeds)

    def test_speeds_mean_near_one(self):
        cluster = hetero_cluster(nodes=500, sigma=0.3)
        speeds = np.array([n.speed for n in cluster.pool.nodes])
        assert 0.9 < speeds.mean() < 1.1

    def test_deterministic_per_seed(self):
        a = hetero_cluster(nodes=8, sigma=0.3, seed=5)
        b = hetero_cluster(nodes=8, sigma=0.3, seed=5)
        assert [n.speed for n in a.pool.nodes] == [n.speed for n in b.pool.nodes]

    def test_pool_speed_validation(self):
        with pytest.raises(ValueError, match="speeds for"):
            NodePool(3, speeds=[1.0])
        with pytest.raises(ValueError):
            Node(index=0, speed=0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(node_speed_sigma=-0.1)


class TestExecutionOnHeterogeneousNodes:
    def test_slow_node_stretches_task(self):
        cluster = hetero_cluster(nodes=1)
        cluster.pool.nodes[0].speed = 0.5
        result = PilotExecutor(cluster).run(
            [Task(name="t", duration=10.0)], nodes=1, walltime=100.0
        )
        attempt = result.outcomes[0].attempts[0]
        assert attempt.elapsed == pytest.approx(20.0)

    def test_multinode_task_paced_by_slowest(self):
        cluster = hetero_cluster(nodes=2)
        cluster.pool.nodes[0].speed = 2.0
        cluster.pool.nodes[1].speed = 0.5
        result = PilotExecutor(cluster).run(
            [Task(name="t", duration=10.0, nodes=2)], nodes=2, walltime=100.0
        )
        assert result.outcomes[0].attempts[0].elapsed == pytest.approx(20.0)

    def test_heterogeneity_widens_static_dynamic_gap(self):
        """A6 ablation shape: per-node speed spread adds stragglers the
        barrier amplifies, so the dynamic advantage grows."""
        from repro.apps.irf.loop import feature_run_durations

        def ratio(sigma):
            durations = feature_run_durations(
                64, median_seconds=100.0, sigma=0.4, seed=11
            )
            def tasks():
                return [Task(name=f"t{i}", duration=float(d)) for i, d in enumerate(durations)]

            static = StaticSetExecutor(hetero_cluster(nodes=8, sigma=sigma)).run(
                tasks(), nodes=8, walltime=10**7
            )
            dynamic = PilotExecutor(hetero_cluster(nodes=8, sigma=sigma)).run(
                tasks(), nodes=8, walltime=10**7
            )
            return static.makespan() / dynamic.makespan()

        assert ratio(0.5) > ratio(0.0)
