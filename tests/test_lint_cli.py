"""The ``python -m repro.lint`` CLI and the engine's path/dispatch faces."""

from __future__ import annotations

import json

import pytest

from repro.cheetah import (
    AppSpec,
    Campaign,
    CampaignDirectory,
    Sweep,
    SweepParameter,
)
from repro.cheetah.manifest import manifest_to_json
from repro.lint import lint, lint_path, suppressions_of
from repro.lint.__main__ import main


def compose(metadata=None, values=(1, 2)):
    campaign = Campaign(
        "demo",
        app=AppSpec("app", executable="run --x ${x}"),
        metadata=metadata,
    )
    campaign.sweep_group("g", nodes=4, walltime=600.0).add(
        Sweep([SweepParameter("x", list(values))])
    )
    return campaign


@pytest.fixture
def clean_campaign_dir(tmp_path):
    directory = CampaignDirectory(tmp_path, compose().to_manifest())
    directory.create()
    return directory.root


class TestCli:
    def test_clean_campaign_exits_zero(self, clean_campaign_dir, capsys):
        assert main([str(clean_campaign_dir)]) == 0
        assert "0 error" in capsys.readouterr().out

    def test_fail_on_warn_tightens_the_gate(self, tmp_path, capsys):
        source = tmp_path / "script.py"
        source.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main([str(source)]) == 0  # FAIR303 is a warning
        assert main([str(source), "--fail-on", "warn"]) == 1
        assert "FAIR303" in capsys.readouterr().out

    def test_suppress_flag(self, tmp_path):
        source = tmp_path / "script.py"
        source.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main([str(source), "--fail-on", "warn",
                     "--suppress", "FAIR303"]) == 0

    def test_json_format(self, tmp_path, capsys):
        source = tmp_path / "script.py"
        source.write_text("x = 1\n")
        assert main([str(source), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["results"] == []

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "FAIR001" in out and "FAIR900" in out

    def test_no_paths_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_missing_path_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["/no/such/path"])
        assert exc.value.code == 2

    def test_manifest_json_file(self, tmp_path, capsys):
        bad = compose(values=(1,)).to_manifest()  # single-value param: info only
        path = tmp_path / "manifest.json"
        path.write_text(manifest_to_json(bad))
        assert main([str(path)]) == 0


class TestSuppressionMetadata:
    def test_campaign_metadata_reaches_the_report(self):
        campaign = compose(metadata={"lint": {"suppress": ["FAIR009"]}},
                           values=(1,))
        report = lint(campaign)
        assert "FAIR009" not in report.rule_ids()
        assert [f.rule_id for f in report.suppressed] == ["FAIR009"]

    def test_suppressions_travel_through_manifest_json(self, tmp_path):
        campaign = compose(metadata={"lint": {"suppress": ["FAIR009"]}},
                           values=(1,))
        directory = CampaignDirectory(tmp_path, campaign.to_manifest())
        directory.create()
        report = lint_path(directory.root)
        assert suppressions_of(directory.manifest) == frozenset({"FAIR009"})
        assert "FAIR009" not in report.rule_ids()

    def test_unknown_suppression_flagged(self):
        campaign = compose(metadata={"lint": {"suppress": ["FAIR999"]}})
        report = lint(campaign)
        assert "FAIR900" in report.rule_ids()


class TestDispatch:
    def test_lint_rejects_unknown_subjects(self):
        with pytest.raises(TypeError, match="cannot lint"):
            lint(42)

    def test_lint_accepts_path_strings(self, clean_campaign_dir):
        assert not lint(str(clean_campaign_dir)).errors

    def test_tree_walk_finds_nested_campaigns(self, tmp_path):
        campaign = compose(values=(1, 1))  # duplicate sweep point: FAIR002
        directory = CampaignDirectory(tmp_path / "nested", campaign.to_manifest())
        directory.create()
        (tmp_path / "loose.py").write_text("def f():\n    return 1\n")
        report = lint_path(tmp_path)
        assert "FAIR002" in report.rule_ids()
