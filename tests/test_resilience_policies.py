"""Tests for the retry-policy layer and its executor integration."""

import pytest

from repro.resilience import (
    ExponentialBackoffPolicy,
    FixedDelayPolicy,
    RetryPolicy,
    as_policy,
    no_retry,
)
from repro.savanna import PilotExecutor, StaticSetExecutor

from conftest import make_cluster


class TestRetryPolicy:
    def test_defaults_never_retry(self):
        policy = RetryPolicy()
        assert policy.max_retries == 0
        assert not policy.allows(0)
        assert policy.delay(1) == 0.0
        assert policy.timeout_for(object()) is None

    def test_allows_counts_against_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(0)
        assert policy.allows(1)
        assert not policy.allows(2)

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError, match="silently disable"):
            RetryPolicy(max_retries=-1)

    def test_non_int_max_retries_rejected(self):
        with pytest.raises(ValueError, match="non-negative int"):
            RetryPolicy(max_retries=2.5)
        with pytest.raises(ValueError, match="non-negative int"):
            RetryPolicy(max_retries=True)

    def test_timeout_validation(self):
        assert RetryPolicy(task_timeout=10.0).task_timeout == 10.0
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0.0)

    def test_allocation_budget_validation(self):
        assert RetryPolicy(allocation_budget=0).allocation_budget == 0
        with pytest.raises(ValueError, match="allocation_budget"):
            RetryPolicy(allocation_budget=-3)


class TestFixedDelayPolicy:
    def test_constant_delay(self):
        policy = FixedDelayPolicy(max_retries=3, delay_seconds=45.0)
        assert policy.delay(1) == policy.delay(3) == 45.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FixedDelayPolicy(delay_seconds=-1.0)


class TestExponentialBackoffPolicy:
    def test_geometric_progression(self):
        policy = ExponentialBackoffPolicy(base=30.0, factor=2.0)
        assert [policy.delay(k) for k in (1, 2, 3)] == [30.0, 60.0, 120.0]

    def test_max_delay_caps(self):
        policy = ExponentialBackoffPolicy(base=30.0, factor=2.0, max_delay=100.0)
        assert policy.delay(5) == 100.0

    def test_jitter_is_deterministic_and_bounded(self):
        a = ExponentialBackoffPolicy(base=30.0, jitter=0.5, seed=9)
        b = ExponentialBackoffPolicy(base=30.0, jitter=0.5, seed=9)
        for k in (1, 2, 3):
            assert a.delay(k) == b.delay(k)
            raw = 30.0 * 2.0 ** (k - 1)
            assert raw <= a.delay(k) <= raw * 1.5

    def test_jitter_varies_with_seed(self):
        a = ExponentialBackoffPolicy(base=30.0, jitter=0.5, seed=1)
        b = ExponentialBackoffPolicy(base=30.0, jitter=0.5, seed=2)
        assert a.delay(1) != b.delay(1)

    def test_retry_index_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            ExponentialBackoffPolicy().delay(0)

    def test_jitter_range_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            ExponentialBackoffPolicy(jitter=1.5)


class TestAsPolicyShim:
    def test_policy_passes_through(self):
        policy = FixedDelayPolicy()
        assert as_policy(policy) is policy

    def test_int_becomes_immediate_retry_policy(self):
        policy = as_policy(3)
        assert isinstance(policy, RetryPolicy)
        assert policy.max_retries == 3
        assert policy.delay(1) == 0.0

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError, match="silently disable"):
            as_policy(-1)

    def test_bool_and_other_types_rejected(self):
        with pytest.raises(ValueError):
            as_policy(True)
        with pytest.raises(ValueError):
            as_policy("twice")

    def test_no_retry_helper(self):
        policy = no_retry(task_timeout=60.0)
        assert policy.max_retries == 0
        assert policy.task_timeout == 60.0


class TestExecutorPolicyWiring:
    def test_pilot_negative_max_retries_raises(self):
        # Regression: a negative max_retries used to silently disable
        # every retry instead of failing loudly.
        with pytest.raises(ValueError, match="silently disable"):
            PilotExecutor(make_cluster(), max_retries=-1)

    def test_pilot_max_retries_reads_from_policy(self):
        executor = PilotExecutor(make_cluster(), max_retries=4)
        assert executor.max_retries == 4
        executor = PilotExecutor(
            make_cluster(), retry_policy=FixedDelayPolicy(max_retries=7)
        )
        assert executor.max_retries == 7

    def test_pilot_rejects_non_policy(self):
        with pytest.raises(ValueError, match="RetryPolicy"):
            PilotExecutor(make_cluster(), retry_policy="aggressive")

    def test_static_rejects_non_policy(self):
        with pytest.raises(ValueError, match="RetryPolicy"):
            StaticSetExecutor(make_cluster(), retry_policy=3)

    def test_static_default_has_no_policy(self):
        assert StaticSetExecutor(make_cluster()).retry_policy is None
