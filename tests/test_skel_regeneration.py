"""Tests for the regeneration planner and multi-instrument dataflow."""


from repro.skel.generator import Generator, TemplateLibrary, plan_regeneration, regenerate
from repro.skel.model import ModelField, ModelSchema, SkelModel


def setup_generator():
    lib = TemplateLibrary()
    lib.add("run", "run_${who}.sh", "echo ${who}\n")
    lib.add("conf", "conf.txt", "who=${who}\n")
    schema = ModelSchema("m", (ModelField("who"),))
    return Generator(lib), SkelModel(schema, {"who": "a"})


class TestPlanRegeneration:
    def test_all_missing_initially(self, tmp_path):
        gen, model = setup_generator()
        plan = plan_regeneration(gen, model, tmp_path)
        assert set(plan.values()) == {"missing"}

    def test_fresh_after_write(self, tmp_path):
        gen, model = setup_generator()
        gen.write(model, tmp_path)
        plan = plan_regeneration(gen, model, tmp_path)
        assert set(plan.values()) == {"fresh"}

    def test_stale_after_model_change(self, tmp_path):
        gen, model = setup_generator()
        gen.write(model, tmp_path)
        changed = model.updated(who="b")
        plan = plan_regeneration(gen, changed, tmp_path)
        # new model -> different paths for templated path; conf.txt is stale
        assert plan["conf.txt"] == "stale"
        assert plan["run_b.sh"] == "missing"

    def test_hand_edit_detected(self, tmp_path):
        gen, model = setup_generator()
        gen.write(model, tmp_path)
        target = tmp_path / "conf.txt"
        target.write_text(target.read_text() + "# my manual tweak\n")
        plan = plan_regeneration(gen, model, tmp_path)
        assert plan["conf.txt"] == "hand-edited"


class TestRegenerate:
    def test_creates_missing_and_refreshes_stale(self, tmp_path):
        gen, model = setup_generator()
        regenerate(gen, model, tmp_path)
        assert (tmp_path / "conf.txt").exists()
        changed = model.updated(who="b")
        regenerate(gen, changed, tmp_path)
        assert "who=b" in (tmp_path / "conf.txt").read_text()
        assert (tmp_path / "run_b.sh").exists()

    def test_preserves_hand_edits_by_default(self, tmp_path):
        gen, model = setup_generator()
        gen.write(model, tmp_path)
        target = tmp_path / "conf.txt"
        edited = target.read_text() + "# precious manual work\n"
        target.write_text(edited)
        regenerate(gen, model, tmp_path)
        assert target.read_text() == edited

    def test_overwrite_flag_discards_hand_edits(self, tmp_path):
        gen, model = setup_generator()
        gen.write(model, tmp_path)
        target = tmp_path / "conf.txt"
        target.write_text(target.read_text() + "# tweak\n")
        regenerate(gen, model, tmp_path, overwrite_hand_edited=True)
        assert "# tweak" not in target.read_text()

    def test_returns_plan(self, tmp_path):
        gen, model = setup_generator()
        plan = regenerate(gen, model, tmp_path)
        assert set(plan.values()) == {"missing"}


class TestMultiInstrumentPipeline:
    def test_merge_filter_scheduler_end_to_end(self):
        """Two instruments -> merge -> filter -> data scheduler -> sinks:
        the Figure 5 graph generalized to multiple collectors."""
        from repro.dataflow import (
            DataflowGraph,
            DataScheduler,
            Filter,
            Merge,
            Punctuation,
            SampleEveryK,
            Sink,
            Source,
        )
        from repro.dataflow.components import ControlSource

        g = DataflowGraph("multi")
        inst_a = g.add(Source("inst-a", ({"v": i, "src": "a"} for i in range(50))))
        inst_b = g.add(Source("inst-b", ({"v": i, "src": "b"} for i in range(30))))
        ctrl = g.add(
            ControlSource(
                "steer",
                [(0, Punctuation("install-policy", ("monitor", SampleEveryK(10))))],
            )
        )
        merge = g.add(Merge("merge", inputs=("a", "b")))
        flt = g.add(Filter("evens", lambda p: p["v"] % 2 == 0))
        sched = g.add(DataScheduler("sched", subscribers=("archive", "monitor")))
        archive = g.add(Sink("archive-sink"))
        monitor = g.add(Sink("monitor-sink"))

        g.connect(inst_a, "out", merge, "a")
        g.connect(inst_b, "out", merge, "b")
        g.connect(merge, "out", flt, "in")
        g.connect(flt, "out", sched, "in")
        g.connect(ctrl, "out", sched, "control")
        g.connect(sched, "archive", archive, "in")
        g.connect(sched, "monitor", monitor, "in")
        g.run()

        # 25 evens from a + 15 evens from b
        assert len(archive.received) == 40
        assert len(monitor.received) == 4
        by_src = {"a": 0, "b": 0}
        for item in archive.received:
            by_src[item.payload["src"]] += 1
        assert by_src == {"a": 25, "b": 15}
