"""Tests for the built-in template library and the Figure 2 baseline."""

import json

import pytest

from repro.apps.gwas.workflow import derive_groups
from repro.skel.generator import Generator
from repro.skel.library import (
    MANUAL_FIELD_PATTERN,
    builtin_library,
    count_manual_fields,
    paste_model_schema,
    traditional_paste_script,
)
from repro.skel.model import ModelValidationError, SkelModel


def paste_model(num_files=250, group_size=100):
    return SkelModel(
        paste_model_schema(),
        {
            "dataset_dir": "/data/gwas",
            "file_pattern": "chr*.tsv",
            "output_file": "all.tsv",
            "num_files": num_files,
            "group_size": group_size,
            "machine_name": "summit",
            "account": "BIO123",
        },
    )


def derived_model(num_files=250, group_size=100):
    model = paste_model(num_files, group_size)
    return model.updated(groups=derive_groups(num_files, group_size))


class TestManualFieldCounting:
    def test_pattern_matches_marker(self):
        assert MANUAL_FIELD_PATTERN.findall("x <<EDIT:foo>> y <<EDIT:bar-2>>") == [
            "foo",
            "bar-2",
        ]

    def test_traditional_script_is_heavily_manual(self):
        counts = count_manual_fields(traditional_paste_script())
        assert counts["unique"] >= 10
        assert counts["total"] >= counts["unique"]
        # the fields the paper highlights in red
        for expected in ("account", "dataset_dir", "subset_start", "subset_stop"):
            assert expected in counts["fields"]

    def test_generated_scripts_have_no_manual_fields(self):
        gen = Generator(builtin_library())
        model = derived_model()
        for f in gen.generate(model, ["final-join", "submit", "campaign-spec", "status"]):
            assert count_manual_fields(f.content)["total"] == 0


class TestBuiltinTemplates:
    def test_library_contents(self):
        lib = builtin_library()
        assert set(lib.names()) == {
            "subjob",
            "final-join",
            "submit",
            "campaign-spec",
            "status",
        }

    def test_campaign_spec_is_valid_json(self):
        gen = Generator(builtin_library())
        model = derived_model(num_files=30, group_size=10)
        spec = [
            f for f in gen.generate(model, ["campaign-spec"]) if f.relpath.endswith(".json")
        ][0]
        doc = json.loads(spec.content)
        assert doc["campaign"] == "gwas-paste"
        # 3 subpaste tasks + the final join
        assert len(doc["tasks"]) == 4
        assert doc["tasks"][-1]["name"] == "final-join"

    def test_subjob_per_group_covers_all_files(self):
        gen = Generator(builtin_library())
        groups = derive_groups(25, 10)
        model = paste_model(25, 10).updated(groups=groups)
        files = gen.generate_per_item(model, "subjob", "group", groups)
        assert len(files) == 3
        # sed ranges must tile 1..25
        covered = []
        for f, g in zip(files, groups):
            assert f"sed -n '{g['sed_start']},{g['sed_stop']}p'" in f.content
            covered.extend(range(g["sed_start"], g["sed_stop"] + 1))
        assert covered == list(range(1, 26))

    def test_submit_script_carries_resources(self):
        gen = Generator(builtin_library())
        model = derived_model()
        submit = [f for f in gen.generate(model, ["submit"])][0]
        assert "#BSUB -P BIO123" in submit.content
        assert "#BSUB -nnodes 1" in submit.content

    def test_status_script_counts_groups(self):
        gen = Generator(builtin_library())
        model = derived_model(num_files=30, group_size=10)
        status = [f for f in gen.generate(model, ["status"])][0]
        assert "/ 3" in status.content


class TestPasteModelSchema:
    def test_strategy_choices(self):
        with pytest.raises(ModelValidationError, match="choices"):
            paste_model().updated(strategy="magic")

    def test_defaults(self):
        model = paste_model()
        assert model["strategy"] == "two-phase"
        assert model["queue"] == "batch"
