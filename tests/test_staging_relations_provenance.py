"""Tests for data staging, model relations, provenance capture, and the
GTF2/PSL annotation formats."""

import pytest

from repro.cluster.filesystem import ParallelFilesystem
from repro.cluster.staging import StagingArea, StagingSpec


class TestStaging:
    def backing(self, bandwidth=1e9):
        return ParallelFilesystem(peak_bandwidth=bandwidth, load_model=None)

    def test_ingest_faster_than_direct_write(self):
        fs = self.backing(bandwidth=1e9)
        staged = StagingArea(self.backing(bandwidth=1e9), StagingSpec(ingest_bandwidth=1e10))
        direct = fs.write_time(int(5e9), now=0.0)
        buffered = staged.write_time(int(5e9), now=0.0)
        assert buffered < direct / 5

    def test_buffer_drains_over_time(self):
        staged = StagingArea(self.backing(bandwidth=1e9), StagingSpec(capacity_bytes=1e10))
        staged.write_time(int(4e9), now=0.0)
        assert staged.buffered_bytes(1.0) == pytest.approx(3e9)
        assert staged.buffered_bytes(10.0) == 0.0

    def test_overflow_stalls_application(self):
        spec = StagingSpec(ingest_bandwidth=1e12, capacity_bytes=1e9)
        staged = StagingArea(self.backing(bandwidth=1e8), spec)
        first = staged.write_time(int(1e9), now=0.0)  # fills the buffer
        second = staged.write_time(int(1e9), now=0.0)  # must wait for drain
        assert second > first
        assert second >= 1e9 / 1e8 * 0.99  # ~ the drain time of the overflow

    def test_duck_types_for_checkpoint_middleware(self):
        from repro.apps.simulation.checkpoint import CheckpointMiddleware, FixedIntervalPolicy

        staged = StagingArea(self.backing())
        mw = CheckpointMiddleware(staged, FixedIntervalPolicy(1), checkpoint_bytes=int(1e9))
        io = mw.end_of_timestep(10.0, now=10.0)
        assert io > 0
        assert mw.stats.checkpoints_written == 1

    def test_staging_raises_checkpoint_count_at_fixed_budget(self):
        """Extension claim: cheaper visible writes -> more checkpoints in
        the same overhead budget."""
        from repro.apps.simulation.checkpoint import CheckpointMiddleware, OverheadBudgetPolicy

        def run(filesystem):
            mw = CheckpointMiddleware(
                filesystem, OverheadBudgetPolicy(0.10), checkpoint_bytes=int(1e12)
            )
            clock = 0.0
            for _ in range(50):
                clock += 30.0
                clock += mw.end_of_timestep(30.0, now=clock)
            return mw.stats.checkpoints_written

        direct = run(ParallelFilesystem(peak_bandwidth=5e10, load_model=None))
        staged = run(
            StagingArea(
                ParallelFilesystem(peak_bandwidth=5e10, load_model=None),
                StagingSpec(ingest_bandwidth=5e11, capacity_bytes=5e12),
            )
        )
        assert staged > direct

    def test_reads_bypass_staging(self):
        backing = self.backing(bandwidth=1e9)
        staged = StagingArea(backing, StagingSpec(ingest_bandwidth=1e12))
        assert staged.read_time(int(1e9), 0.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StagingSpec(ingest_bandwidth=0)
        with pytest.raises(ValueError):
            StagingArea(self.backing()).write_time(-1, 0.0)


class TestModelRelations:
    def model(self, **overrides):
        from repro.skel.library import paste_model_schema
        from repro.skel.model import SkelModel

        values = {
            "dataset_dir": "/d",
            "file_pattern": "*.tsv",
            "output_file": "out.tsv",
            "num_files": 100,
            "group_size": 10,
            "machine_name": "m",
            "account": "a",
        }
        values.update(overrides)
        return SkelModel(paste_model_schema(), values)

    def test_valid_model_passes(self):
        from repro.skel.relations import check_relations, paste_relations

        assert check_relations(self.model(), paste_relations()) == []

    def test_group_larger_than_dataset_caught(self):
        from repro.skel.relations import check_relations, paste_relations

        violations = check_relations(
            self.model(num_files=5, group_size=10), paste_relations()
        )
        names = {v.relation.name for v in violations}
        assert "group-fits-dataset" in names

    def test_enforce_raises_with_readable_message(self):
        from repro.skel.model import ModelValidationError
        from repro.skel.relations import enforce_relations, paste_relations

        with pytest.raises(ModelValidationError, match="fan-in"):
            enforce_relations(self.model(num_files=5000, group_size=2000), paste_relations())

    def test_single_strategy_skips_two_phase_rule(self):
        from repro.skel.relations import check_relations, paste_relations

        model = self.model(num_files=10, group_size=10, strategy="single")
        names = {v.relation.name for v in check_relations(model, paste_relations())}
        assert "two-phase-needs-groups" not in names

    def test_missing_variable_raises(self):
        from repro.skel.relations import ModelRelation

        relation = ModelRelation("r", ("ghost",), lambda v: True, "m")
        with pytest.raises(KeyError, match="ghost"):
            relation.holds({"other": 1})

    def test_relation_validation(self):
        from repro.skel.relations import ModelRelation

        with pytest.raises(ValueError):
            ModelRelation("r", (), lambda v: True, "m")
        with pytest.raises(ValueError):
            ModelRelation("r", ("a",), "not-callable", "m")


class TestProvenanceCapture:
    def run_campaign(self):
        from conftest import make_cluster

        from repro.cluster.job import Task
        from repro.savanna import PilotExecutor

        tasks = [
            Task(name=f"t{i}", duration=d, payload={"i": i})
            for i, d in enumerate([10, 10, 10, 300])  # one straggler
        ]
        return PilotExecutor(make_cluster(nodes=2)).run(tasks, nodes=2, walltime=5000.0)

    def test_records_every_attempt_with_campaign(self):
        from repro.metadata.provenance import CampaignContext, ProvenanceStore
        from repro.savanna import record_campaign_result

        result = self.run_campaign()
        store = ProvenanceStore()
        ctx = CampaignContext("cap", "test")
        added = record_campaign_result(result, store, ctx)
        assert added == 4
        summary = store.summarize_campaign("cap")
        assert summary["runs"] == 4
        assert summary["outcomes"] == {"done": 4}
        record = store.query(component="t2")[0]
        assert record.parameters == {"i": 2}

    def test_idempotent_campaign_registration(self):
        from repro.metadata.provenance import CampaignContext, ProvenanceStore
        from repro.savanna import record_campaign_result

        store = ProvenanceStore()
        ctx = CampaignContext("cap", "test")
        result = self.run_campaign()
        record_campaign_result(result, store, ctx)
        record_campaign_result(self.run_campaign(), store, ctx)  # same name, no raise
        assert len(store.query(campaign="cap")) == 8

    def test_straggler_report_finds_the_long_run(self):
        from repro.metadata.provenance import CampaignContext, ProvenanceStore
        from repro.savanna import record_campaign_result, straggler_report

        store = ProvenanceStore()
        record_campaign_result(self.run_campaign(), store, CampaignContext("cap", "t"))
        stragglers = straggler_report(store, "cap", threshold=3.0)
        assert [r.component for r in stragglers] == ["t3"]

    def test_straggler_report_empty_campaign(self):
        from repro.metadata.provenance import CampaignContext, ProvenanceStore
        from repro.savanna import straggler_report

        store = ProvenanceStore()
        store.register_campaign(CampaignContext("empty", "t"))
        assert straggler_report(store, "empty") == []


class TestGtf2Psl:
    from repro.apps.gwas.formats import AnnotationRecord

    RECORDS = [
        AnnotationRecord("chr1", 10, 20, "geneA", 5.0, "+"),
        AnnotationRecord("chr2", 0, 7, "geneB", 3.0, "-"),
    ]

    def test_gtf2_roundtrip(self):
        from repro.apps.gwas.formats import parse_gtf2, to_gtf2

        assert parse_gtf2(to_gtf2(self.RECORDS)) == self.RECORDS

    def test_gtf2_attribute_grammar(self):
        from repro.apps.gwas.formats import to_gtf2

        line = to_gtf2(self.RECORDS[:1]).splitlines()[0]
        assert 'gene_id "geneA";' in line

    def test_psl_roundtrip_for_stranded_records(self):
        from repro.apps.gwas.formats import parse_psl, to_psl

        assert parse_psl(to_psl(self.RECORDS)) == self.RECORDS

    def test_psl_21_columns(self):
        from repro.apps.gwas.formats import to_psl

        line = to_psl(self.RECORDS[:1]).splitlines()[0]
        assert len(line.split("\t")) == 21

    def test_psl_coordinates_are_zero_based(self):
        from repro.apps.gwas.formats import to_psl

        cols = to_psl(self.RECORDS[:1]).splitlines()[0].split("\t")
        assert (cols[15], cols[16]) == ("10", "20")

    def test_registry_reaches_new_formats(self):
        from repro.apps.gwas.formats import annotation_registry, parse_gtf2, to_bed

        reg = annotation_registry()
        gtf = reg.convert(to_bed(self.RECORDS), "bed", "gtf2")
        assert parse_gtf2(gtf) == self.RECORDS
        assert reg.can_convert("psl", "custom")

    def test_malformed_lines_rejected(self):
        from repro.apps.gwas.formats import parse_gtf2, parse_psl

        with pytest.raises(ValueError, match="GTF2 line"):
            parse_gtf2("too\tfew\n")
        with pytest.raises(ValueError, match="PSL line"):
            parse_psl("1\t2\t3\n")
