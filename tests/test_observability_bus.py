"""Unit tests for the event bus, span tracing, metrics, and recorder."""

import warnings

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.observability import (
    BEGIN,
    END,
    INSTANT,
    TASK,
    Counter,
    Event,
    EventBus,
    GaugeMetric,
    Histogram,
    MetricsRegistry,
    SubscriberError,
    TraceRecorder,
    events_from_trace,
    percentile,
    span_key,
    subscribe_all,
    validate_event_stream,
)


class TestEvent:
    def test_phase_validated(self):
        with pytest.raises(ValueError, match="phase"):
            Event(name="task", time=0.0, phase="middle")

    def test_is_span(self):
        assert Event("task", 0.0, phase=BEGIN).is_span
        assert Event("task", 0.0, phase=END).is_span
        assert not Event("node.busy", 0.0, phase=INSTANT).is_span

    def test_span_key_pairs_tasks_on_id(self):
        a = Event(TASK, 0.0, phase=BEGIN, fields={"task_id": 7, "task": "t"})
        b = Event(TASK, 5.0, phase=END, fields={"task_id": 7, "task": "t"})
        c = Event(TASK, 0.0, phase=BEGIN, fields={"task_id": 8, "task": "t"})
        assert span_key(a) == span_key(b)
        assert span_key(a) != span_key(c)


class TestSubscription:
    def test_subscribe_and_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.emit("task", phase=BEGIN, task_id=0)
        unsubscribe()
        bus.emit("task", phase=END, task_id=0)
        assert [e.phase for e in seen] == [BEGIN]

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()  # no error

    def test_emit_without_subscribers_returns_none(self):
        bus = EventBus()
        assert bus.emit("task", phase=BEGIN, task_id=0) is None

    def test_seq_strictly_increasing_and_clock_used(self):
        t = [0.0]
        bus = EventBus(clock=lambda: t[0])
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a")
        t[0] = 5.0
        bus.emit("b")
        assert [e.seq for e in seen] == [0, 1]
        assert [e.time for e in seen] == [0.0, 5.0]

    def test_explicit_time_overrides_clock(self):
        bus = EventBus(clock=lambda: 99.0)
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a", time=3.0)
        assert seen[0].time == 3.0

    def test_global_subscriber_sees_every_bus(self):
        seen = []
        unsubscribe = subscribe_all(seen.append)
        try:
            EventBus().emit("a")
            EventBus().emit("b")
        finally:
            unsubscribe()
        EventBus().emit("c")
        assert [e.name for e in seen] == ["a", "b"]
        assert seen[0].pid != seen[1].pid

    def test_delivery_order_matches_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.emit("a")
        assert order == ["first", "second"]


class TestSubscriberIsolation:
    """A raising subscriber must not kill the run it observes."""

    def test_raising_subscriber_does_not_break_delivery(self):
        bus = EventBus()
        seen = []

        def broken(event):
            raise RuntimeError("observer bug")

        bus.subscribe(broken)
        bus.subscribe(seen.append)
        with pytest.warns(SubscriberError, match="observer bug"):
            event = bus.emit("task", phase=BEGIN, task_id=0)
        assert event is not None  # emit itself succeeded
        assert [e.name for e in seen] == ["task"]  # later subscriber still ran

    def test_raising_subscriber_stays_subscribed_and_warns_once_per_event_name(self):
        bus = EventBus()
        calls = []

        def broken(event):
            calls.append(event.name)
            raise ValueError("still broken")

        bus.subscribe(broken)
        # First failure at each event name warns, and the warning names
        # the event so the failure is debuggable without a local repro.
        with pytest.warns(SubscriberError, match="event 'a'"):
            bus.emit("a")
        with pytest.warns(SubscriberError, match="event 'b'"):
            bus.emit("b")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # repeat failures are silent
            bus.emit("a")
            bus.emit("b")
        assert calls == ["a", "b", "a", "b"]

    def test_subscriber_error_escalates_under_error_filter(self):
        # Tests can surface observer bugs hard by raising the category.
        bus = EventBus()
        bus.subscribe(lambda e: 1 / 0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", SubscriberError)
            with pytest.raises(SubscriberError):
                bus.emit("a")

    def test_raising_global_subscriber_is_isolated_too(self):
        seen = []
        unsubscribe = subscribe_all(lambda e: (_ for _ in ()).throw(RuntimeError("x")))
        try:
            bus = EventBus()
            bus.subscribe(seen.append)
            with pytest.warns(SubscriberError):
                bus.emit("a")
        finally:
            unsubscribe()
        assert [e.name for e in seen] == ["a"]


class TestSpans:
    def test_span_emits_begin_then_end(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        with bus.span("group", group="g0"):
            bus.emit("task", phase=BEGIN, task_id=0)
            bus.emit("task", phase=END, task_id=0, outcome="done")
        assert [(e.name, e.phase) for e in seen] == [
            ("group", BEGIN),
            ("task", BEGIN),
            ("task", END),
            ("group", END),
        ]
        assert seen[-1].fields["outcome"] == "ok"
        validate_event_stream(seen)

    def test_span_closes_on_exception_and_reraises(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        with pytest.raises(RuntimeError, match="boom"):
            with bus.span("campaign", campaign="c"):
                raise RuntimeError("boom")
        assert seen[-1].phase == END
        assert seen[-1].fields["outcome"] == "error"
        assert "boom" in seen[-1].fields["error"]
        validate_event_stream(seen)  # no dangling span

    def test_nested_spans_validate(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        with bus.span("campaign", campaign="c"):
            with bus.span("alloc", alloc=0):
                pass
        validate_event_stream(seen)


class TestValidateEventStream:
    def test_backwards_time_rejected(self):
        events = [Event("a", 5.0, seq=0), Event("b", 4.0, seq=1)]
        with pytest.raises(ValueError, match="backwards"):
            validate_event_stream(events)

    def test_non_increasing_seq_rejected(self):
        events = [Event("a", 0.0, seq=1), Event("b", 0.0, seq=1)]
        with pytest.raises(ValueError, match="sequence"):
            validate_event_stream(events)

    def test_end_without_begin_rejected(self):
        events = [Event(TASK, 0.0, phase=END, seq=0, fields={"task_id": 0})]
        with pytest.raises(ValueError, match="without begin"):
            validate_event_stream(events)

    def test_open_span_rejected(self):
        events = [Event(TASK, 0.0, phase=BEGIN, seq=0, fields={"task_id": 0})]
        with pytest.raises(ValueError, match="left open"):
            validate_event_stream(events)

    def test_per_pid_clocks_are_independent(self):
        # Two buses, each monotone, interleaved non-monotonically overall.
        events = [
            Event("a", 100.0, seq=0, pid=0),
            Event("b", 0.0, seq=0, pid=1),
            Event("c", 200.0, seq=1, pid=0),
        ]
        validate_event_stream(events)


class TestMetrics:
    def test_counter_monotone(self):
        c = Counter("n")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_peak(self):
        g = GaugeMetric("busy")
        g.add(2)
        g.add(3)
        g.add(-4)
        assert g.value == 1
        assert g.peak == 5

    def test_histogram_summary(self):
        h = Histogram("elapsed")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)

    def test_registry_get_or_create_and_snapshot(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        m.counter("x").inc()
        m.gauge("g").set(2.0)
        m.histogram("h").observe(1.5)
        snap = m.snapshot()
        assert snap["counters"]["x"] == 1
        assert snap["gauges"]["g"]["value"] == 2.0
        assert snap["histograms"]["h"]["count"] == 1


class TestQuantiles:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([5.0], 50) == 5.0

    def test_percentile_accepts_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_histogram_summary_has_quantiles(self):
        h = Histogram("elapsed")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        s = h.summary()
        assert s["p50"] == pytest.approx(50.5)
        assert s["p95"] == pytest.approx(95.05)
        assert s["p99"] == pytest.approx(99.01)
        assert h.quantile(0) == 1.0 and h.quantile(100) == 100.0

    def test_empty_histogram_quantiles_are_none(self):
        s = Histogram("elapsed").summary()
        assert s["p50"] is None and s["p95"] is None and s["p99"] is None

    def test_snapshot_carries_quantiles(self):
        m = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            m.histogram("h").observe(v)
        snap = m.snapshot()["histograms"]["h"]
        assert snap["p50"] == pytest.approx(2.0)


class TestHistogramReservoir:
    """The bounded seeded reservoir behind Histogram quantiles."""

    def test_memory_is_bounded_but_totals_are_exact(self):
        h = Histogram("elapsed", max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h.samples) == 64  # reservoir never grows past the cap
        assert h.count == 10_000  # ...while count/total/min/max stay exact
        assert h.total == pytest.approx(sum(range(10_000)))
        assert h.min == 0.0 and h.max == 9999.0

    def test_quantiles_deterministic_under_fixed_seed(self):
        def fill(seed):
            h = Histogram("elapsed", max_samples=128, seed=seed)
            for v in range(5_000):
                h.observe(float(v))
            return h

        a, b = fill(seed=7), fill(seed=7)
        assert a.samples == b.samples  # identical reservoirs, not just close
        assert a.summary() == b.summary()
        # A different seed keeps a different (but equally valid) subsample.
        c = fill(seed=8)
        assert c.samples != a.samples

    def test_reservoir_quantiles_approximate_truth(self):
        h = Histogram("elapsed", max_samples=512)
        for v in range(20_000):
            h.observe(float(v))
        # Uniform data: reservoir p50 should land near the true median.
        assert h.quantile(50) == pytest.approx(10_000, rel=0.15)

    def test_small_streams_are_exact(self):
        # Below the cap the reservoir is the full stream: quantiles exact.
        h = Histogram("elapsed", max_samples=4096)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(50) == pytest.approx(50.5)

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Histogram("elapsed", max_samples=0)


class TestEventsFromTrace:
    def _capture(self):
        bus = EventBus()
        rec = TraceRecorder().attach(bus)
        bus.emit(TASK, phase=BEGIN, time=1.0, task_id=0, task="t0", node=2)
        bus.emit("node.busy", time=1.0, node=2)
        bus.emit(TASK, phase=END, time=4.5, task_id=0, task="t0", node=2, outcome="done")
        bus.emit("node.idle", time=4.5, node=2)
        return rec

    def test_roundtrip_through_file_is_exact(self, tmp_path):
        rec = self._capture()
        path = rec.write_chrome_trace(tmp_path / "t.json")
        loaded = events_from_trace(path)
        assert [
            (e.name, e.time, e.phase, e.seq, e.pid, e.fields) for e in loaded
        ] == [
            (e.name, e.time, e.phase, e.seq, e.pid, e.fields) for e in rec.events
        ]

    def test_roundtrip_validates_by_default(self):
        rec = self._capture()
        events = events_from_trace(rec.to_chrome_trace())
        validate_event_stream(events)

    def test_foreign_trace_without_roundtrip_keys(self):
        # A trace some other tool wrote: Chrome fields only, no seq/t.
        entries = [
            {"name": "task", "ph": "B", "ts": 1.0e6, "pid": 9, "tid": 1, "args": {"task_id": 0}},
            {"name": "task", "ph": "E", "ts": 2.0e6, "pid": 9, "tid": 1, "args": {"task_id": 0}},
        ]
        events = events_from_trace(entries)
        assert [e.time for e in events] == [1.0, 2.0]
        assert [e.seq for e in events] == [0, 1]  # derived per pid
        assert events[0].pid == 9

    def test_trace_events_object_form_accepted(self):
        rec = self._capture()
        events = events_from_trace({"traceEvents": rec.to_chrome_trace()})
        assert len(events) == len(rec.events)

    def test_malformed_entry_reports_index(self):
        with pytest.raises(ValueError, match="entry 1"):
            events_from_trace(
                [
                    {"name": "a", "ph": "i", "ts": 0.0, "pid": 0, "args": {}},
                    {"ph": "??"},
                ]
            )


class TestRecorder:
    def _task_span(self, bus, task_id, start, end, outcome="done", node=0):
        bus.emit(TASK, phase=BEGIN, time=start, task_id=task_id, task=f"t{task_id}", node=node)
        bus.emit(TASK, phase=END, time=end, task_id=task_id, task=f"t{task_id}",
                 node=node, outcome=outcome)

    def test_attach_records_and_detach_stops(self):
        bus = EventBus()
        rec = TraceRecorder().attach(bus)
        self._task_span(bus, 0, 0.0, 10.0)
        rec.detach()
        self._task_span(bus, 1, 10.0, 20.0)
        assert len(rec.events) == 2
        assert rec.metrics.snapshot()["counters"]["tasks.launched"] == 1

    def test_task_metrics_and_elapsed(self):
        bus = EventBus()
        rec = TraceRecorder().attach(bus)
        self._task_span(bus, 0, 0.0, 10.0, outcome="done")
        self._task_span(bus, 1, 0.0, 30.0, outcome="failed")
        snap = rec.metrics.snapshot()
        assert snap["counters"]["tasks.done"] == 1
        assert snap["counters"]["tasks.failed"] == 1
        assert snap["histograms"]["task.elapsed"]["mean"] == pytest.approx(20.0)

    def test_chrome_trace_shape(self):
        bus = EventBus()
        rec = TraceRecorder().attach(bus)
        self._task_span(bus, 0, 1.0, 2.0, node=3)
        bus.emit("node.busy", time=1.0, node=3)
        trace = rec.to_chrome_trace()
        assert all(
            {"name", "ph", "ts", "pid", "tid", "args"} <= set(e) for e in trace
        )
        begin = trace[0]
        assert begin["ph"] == "B"
        assert begin["ts"] == pytest.approx(1.0e6)  # microseconds
        assert begin["tid"] == 4  # node 3 -> row 4; row 0 is control
        instant = trace[-1]
        assert instant["ph"] == "i"
        assert instant["s"] == "t"

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        import json

        bus = EventBus()
        rec = TraceRecorder().attach(bus)
        self._task_span(bus, 0, 0.0, 1.0)
        path = rec.write_chrome_trace(tmp_path / "out.json")
        loaded = json.loads(path.read_text())
        assert loaded == rec.to_chrome_trace()

    def test_recording_context_captures_new_buses(self):
        rec = TraceRecorder()
        with rec.recording():
            bus = EventBus()  # created inside the block, never attached
            self._task_span(bus, 0, 0.0, 5.0)
        EventBus().emit("late")
        assert [e.name for e in rec.events] == [TASK, TASK]


class TestPublishBatch:
    """Batched emission must be indistinguishable from the emit loop."""

    def test_returns_none_without_subscribers(self):
        bus = EventBus()
        assert bus.publish_batch([("task", BEGIN, 1.0, {"task_id": 0})]) is None

    def test_seq_and_order_match_emit_loop(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("before")
        events = bus.publish_batch(
            [
                ("task", BEGIN, 1.0, {"task_id": 0}),
                ("task", END, 2.0, {"task_id": 0, "outcome": "done"}),
            ]
        )
        bus.emit("after")
        assert [e.seq for e in seen] == [0, 1, 2, 3]
        assert events == seen[1:3]

    def test_none_phase_and_time_use_emit_defaults(self):
        clock = iter([7.0]).__next__
        bus = EventBus(clock=lambda: 7.0)
        seen = []
        bus.subscribe(seen.append)
        bus.publish_batch([("mark", None, None, {}), ("mark2", None, None, {})])
        assert [(e.phase, e.time) for e in seen] == [(INSTANT, 7.0), (INSTANT, 7.0)]

    def test_batch_subscriber_gets_one_call(self):
        bus = EventBus()
        calls = []

        class Sink:
            def __call__(self, event):
                calls.append(("single", event))

            def on_batch(self, events):
                calls.append(("batch", list(events)))

        bus.subscribe(Sink())
        bus.publish_batch([("a", None, 0.0, {}), ("b", None, 0.0, {})])
        assert len(calls) == 1 and calls[0][0] == "batch"
        assert [e.name for e in calls[0][1]] == ["a", "b"]

    def test_raising_batch_subscriber_is_isolated_and_names_event(self):
        bus = EventBus()
        seen = []

        class Broken:
            def __call__(self, event):
                pass

            def on_batch(self, events):
                raise RuntimeError("boom")

        bus.subscribe(Broken())
        bus.subscribe(seen.append)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bus.publish_batch([("task", BEGIN, 0.0, {"task_id": 1})])
        assert len(seen) == 1
        assert len(caught) == 1 and issubclass(caught[0].category, SubscriberError)
        assert "'task'" in str(caught[0].message)
        assert "batch of 1" in str(caught[0].message)


class TestBatchedEmissionProperty:
    """Property: per-event emit vs any batched chunking of the same
    stream yields *byte-identical* recorder output (Chrome trace JSON,
    after normalizing the process-global bus pid)."""

    NAMES = ["task", "alloc", "node.busy", "campaign", "custom.metric"]
    PHASES = [BEGIN, END, INSTANT]

    @staticmethod
    def _normalized_trace(recorder):
        import json

        out = []
        for entry in recorder.to_chrome_trace():
            entry = dict(entry)
            entry["pid"] = 0
            out.append(entry)
        return json.dumps(out)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_chunking_is_byte_identical_to_emit_loop(self, data):
        specs = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(self.NAMES),
                    st.sampled_from(self.PHASES),
                    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
                    st.fixed_dictionaries(
                        {},
                        optional={
                            "task_id": st.integers(0, 5),
                            "node": st.integers(0, 5),
                            "outcome": st.sampled_from(["done", "failed"]),
                            "k": st.one_of(st.integers(-5, 5), st.just("x")),
                        },
                    ),
                ),
                max_size=30,
            )
        )
        # Reference: one emit per event.
        bus_a = EventBus()
        rec_a = TraceRecorder().attach(bus_a)
        for name, phase, time, fields in specs:
            bus_a.emit(name, phase=phase, time=time, **fields)
        # Candidate: the same stream in randomly-drawn batch chunks.
        bus_b = EventBus()
        rec_b = TraceRecorder().attach(bus_b)
        i = 0
        while i < len(specs):
            size = data.draw(st.integers(1, len(specs) - i))
            bus_b.publish_batch(specs[i : i + size])
            i += size
        assert self._normalized_trace(rec_a) == self._normalized_trace(rec_b)
        assert rec_a.metrics.snapshot() == rec_b.metrics.snapshot()
