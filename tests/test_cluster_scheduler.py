"""Tests for the batch scheduler: queueing, walltime, early finish."""

import pytest

from repro.cluster.engine import Simulator
from repro.cluster.job import AllocationRequest
from repro.cluster.node import NodePool
from repro.cluster.scheduler import BatchScheduler, QueueModel


def make_scheduler(nodes=4, wait=10.0):
    sim = Simulator()
    pool = NodePool(nodes)
    sched = BatchScheduler(sim, pool, QueueModel(median_wait=wait, sigma=0.0), seed=0)
    return sim, pool, sched


class TestSubmission:
    def test_grant_after_queue_wait(self):
        sim, pool, sched = make_scheduler(wait=10.0)
        granted = []
        sched.submit(AllocationRequest(nodes=2, walltime=100.0), granted.append)
        sim.run()
        assert len(granted) == 1
        # deterministic wait: median * (1 + frac)^0.5 with frac = 2/4
        assert granted[0].start == pytest.approx(10.0 * 1.5**0.5)

    def test_allocation_gets_requested_nodes(self):
        sim, pool, sched = make_scheduler()
        granted = []
        sched.submit(AllocationRequest(nodes=3, walltime=50.0), granted.append)
        sim.run()
        assert len(granted[0].nodes) == 3

    def test_oversized_request_rejected(self):
        sim, pool, sched = make_scheduler(nodes=2)
        with pytest.raises(ValueError, match="machine has 2"):
            sched.submit(AllocationRequest(nodes=3, walltime=10.0), lambda a: None)

    def test_fcfs_blocks_second_job_until_nodes_free(self):
        sim, pool, sched = make_scheduler(nodes=4, wait=0.0)
        starts = {}
        sched.submit(
            AllocationRequest(nodes=4, walltime=100.0, name="j1"),
            lambda a: starts.__setitem__("j1", sim.now),
        )
        sched.submit(
            AllocationRequest(nodes=2, walltime=50.0, name="j2"),
            lambda a: starts.__setitem__("j2", sim.now),
        )
        sim.run()
        assert starts["j2"] >= starts["j1"] + 100.0

    def test_on_end_fires_at_deadline(self):
        sim, pool, sched = make_scheduler(wait=0.0)
        ends = []
        sched.submit(
            AllocationRequest(nodes=1, walltime=30.0),
            lambda a: None,
            lambda a: ends.append(sim.now),
        )
        sim.run()
        assert ends == [30.0]

    def test_nodes_released_after_deadline(self):
        sim, pool, sched = make_scheduler(nodes=2, wait=0.0)
        sched.submit(AllocationRequest(nodes=2, walltime=10.0), lambda a: None)
        sim.run()
        assert pool.free_count == 2


class TestEarlyFinish:
    def test_finish_releases_nodes_immediately(self):
        sim, pool, sched = make_scheduler(nodes=2, wait=0.0)
        holder = {}
        sched.submit(
            AllocationRequest(nodes=2, walltime=1000.0),
            lambda a: holder.__setitem__("alloc", a),
        )
        sim.run(until=5.0)
        sched.finish(holder["alloc"])
        assert pool.free_count == 2
        assert sim.now == 5.0

    def test_finish_cancels_deadline_callback(self):
        sim, pool, sched = make_scheduler(wait=0.0)
        ends = []
        holder = {}
        sched.submit(
            AllocationRequest(nodes=1, walltime=1000.0),
            lambda a: holder.__setitem__("alloc", a),
            lambda a: ends.append(sim.now),
        )
        sim.run(until=5.0)
        sched.finish(holder["alloc"])
        sim.run()
        assert ends == [5.0]  # fired once, at finish time, not at 1000

    def test_finish_twice_rejected(self):
        sim, pool, sched = make_scheduler(wait=0.0)
        holder = {}
        sched.submit(
            AllocationRequest(nodes=1, walltime=1000.0),
            lambda a: holder.__setitem__("alloc", a),
        )
        sim.run(until=1.0)
        sched.finish(holder["alloc"])
        with pytest.raises(RuntimeError, match="not active"):
            sched.finish(holder["alloc"])

    def test_finish_unblocks_queued_job(self):
        sim, pool, sched = make_scheduler(nodes=2, wait=0.0)
        holder, starts = {}, []
        sched.submit(
            AllocationRequest(nodes=2, walltime=1000.0, name="j1"),
            lambda a: holder.__setitem__("alloc", a),
        )
        sched.submit(
            AllocationRequest(nodes=2, walltime=10.0, name="j2"),
            lambda a: starts.append(sim.now),
        )
        sim.run(until=5.0)
        sched.finish(holder["alloc"])
        sim.run()
        assert starts == [5.0]


class TestBackfill:
    def make(self, backfill):
        sim = Simulator()
        pool = NodePool(4)
        sched = BatchScheduler(
            sim, pool, QueueModel(median_wait=0.0, sigma=0.0), backfill=backfill, seed=0
        )
        return sim, pool, sched

    def submit_blocked_head_scenario(self, sched, sim, starts):
        # j1 holds 2 of 4 nodes; j2 (the head, wants all 4) blocks;
        # j3 (2 nodes) fits in the idle half right now.
        sched.submit(
            AllocationRequest(nodes=2, walltime=100.0, name="j1"),
            lambda a: starts.append(("j1", sim.now)),
        )
        sched.submit(
            AllocationRequest(nodes=4, walltime=100.0, name="j2"),
            lambda a: starts.append(("j2", sim.now)),
        )
        sched.submit(
            AllocationRequest(nodes=2, walltime=10.0, name="j3"),
            lambda a: starts.append(("j3", sim.now)),
        )

    def test_fcfs_blocks_small_job_behind_big(self):
        sim, pool, sched = self.make(backfill=False)
        starts = []
        self.submit_blocked_head_scenario(sched, sim, starts)
        sim.run()
        order = [name for name, _t in starts]
        assert order == ["j1", "j2", "j3"]
        start_times = dict(starts)
        assert start_times["j3"] >= 200.0

    def test_backfill_lets_small_job_jump(self):
        """j3 backfills into the idle half of the machine while the
        whole-machine head job waits."""
        sim, pool, sched = self.make(backfill=True)
        starts = []
        self.submit_blocked_head_scenario(sched, sim, starts)
        sim.run()
        start_times = dict(starts)
        assert start_times["j3"] == 0.0
        assert start_times["j3"] < start_times["j2"]

    def test_backfill_immediate_when_space_free(self):
        sim, pool, sched = self.make(backfill=True)
        starts = []
        sched.submit(
            AllocationRequest(nodes=3, walltime=50.0, name="big"),
            lambda a: starts.append(("big", sim.now)),
        )
        sched.submit(
            AllocationRequest(nodes=2, walltime=50.0, name="blocked"),
            lambda a: starts.append(("blocked", sim.now)),
        )
        sched.submit(
            AllocationRequest(nodes=1, walltime=5.0, name="tiny"),
            lambda a: starts.append(("tiny", sim.now)),
        )
        sim.run()
        start_times = dict(starts)
        assert start_times["tiny"] == 0.0  # fills the idle 4th node at once

    def test_backfill_preserves_head_eventual_start(self):
        sim, pool, sched = self.make(backfill=True)
        starts = []
        self.submit_blocked_head_scenario(sched, sim, starts)
        sim.run()
        assert {name for name, _t in starts} == {"j1", "j2", "j3"}


class TestQueueModel:
    def test_deterministic_when_sigma_zero(self):
        import numpy as np

        qm = QueueModel(median_wait=60.0, sigma=0.0)
        req = AllocationRequest(nodes=1, walltime=10.0)
        rng = np.random.default_rng(0)
        assert qm.sample(req, 100, rng) == qm.sample(req, 100, rng)

    def test_bigger_jobs_wait_longer(self):
        import numpy as np

        qm = QueueModel(median_wait=60.0, sigma=0.0)
        rng = np.random.default_rng(0)
        small = qm.sample(AllocationRequest(nodes=1, walltime=10.0), 100, rng)
        big = qm.sample(AllocationRequest(nodes=100, walltime=10.0), 100, rng)
        assert big > small

    def test_stochastic_wait_varies(self):
        import numpy as np

        qm = QueueModel(median_wait=60.0, sigma=1.0)
        req = AllocationRequest(nodes=1, walltime=10.0)
        rng = np.random.default_rng(0)
        samples = {qm.sample(req, 100, rng) for _ in range(10)}
        assert len(samples) > 1
