"""Tests for the asyncio campaign service (repro.savanna.service).

The acceptance scenario drives three campaigns concurrently through one
``CampaignService`` — mixed priorities, one cancellation mid-flight, one
``resume=True`` re-submission — and asserts interleaved
``service.*``/execution events, fair-share ordering, and backpressure at
the queue bound.  The remaining tests pin the scheduler, the handle API,
the thread-safe bus, and the checkpoint single-writer guard in
isolation.

No pytest-asyncio here: each async scenario runs under ``asyncio.run``
inside a plain test function.
"""

from __future__ import annotations

import asyncio
import threading
import time
import warnings

import pytest

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory
from repro.observability import (
    SERVICE_CANCELLED,
    SERVICE_FINISHED,
    SERVICE_SATURATED,
    SERVICE_STARTED,
    SERVICE_SUBMITTED,
)
from repro.resilience import CampaignCheckpoint
from repro.savanna import (
    CampaignService,
    ServiceSaturated,
    SubmissionState,
    ThreadSafeBus,
    service_bus,
)


def app(params):
    time.sleep(params.get("sleep", 0.005))
    return params["x"] + 1


def make_manifest(name, n=4, sleep=0.005):
    camp = Campaign(name, app=AppSpec("service-app"))
    sg = camp.sweep_group("g", nodes=2, walltime=600.0)
    sg.add(Sweep([SweepParameter("x", range(n))]))
    manifest = camp.to_manifest()
    for run in manifest.runs:
        run.parameters["sleep"] = sleep
    return manifest


async def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition not reached")
        await asyncio.sleep(interval)


class TestAcceptance:
    """The ISSUE scenario, end to end on ``local-threads``."""

    def test_concurrent_campaigns_cancel_resume_fair_share_backpressure(
        self, tmp_path
    ):
        events = []
        slow_manifest = make_manifest("slow-b", n=30, sleep=0.05)
        directory = CampaignDirectory(tmp_path, slow_manifest)
        directory.create()

        async def scenario():
            service = CampaignService(max_workers=2, max_queue_depth=3)
            service.bus.subscribe(events.append)
            async with service:
                # All four submit() calls run before the loop yields, so
                # the queue genuinely holds three when the fourth arrives.
                fast_a = service.submit(make_manifest("fast-a", n=6),
                                        app_fn=app, tenant="lab-a")
                slow_b = service.submit(slow_manifest, app_fn=app,
                                        tenant="lab-b", directory=directory,
                                        max_workers=2)
                fast_c = service.submit(make_manifest("fast-c", n=6),
                                        app_fn=app, tenant="lab-a", priority=1)
                assert service.saturated
                with pytest.raises(ServiceSaturated):
                    service.submit(make_manifest("overflow"), app_fn=app)

                # Cancel the slow campaign once it is genuinely running.
                await wait_for(
                    lambda: slow_b.status() is SubmissionState.RUNNING
                )
                await asyncio.sleep(0.4)
                assert slow_b.cancel()
                await asyncio.gather(
                    fast_a.wait(), slow_b.wait(), fast_c.wait()
                )

                # Re-submit the cancelled campaign: resume from the cut.
                resumed = service.submit(slow_manifest, app_fn=app,
                                         tenant="lab-b", directory=directory,
                                         resume=True, max_workers=2)
                assert await resumed.wait(timeout=30.0) is SubmissionState.DONE
                return fast_a, slow_b, fast_c, resumed

        fast_a, slow_b, fast_c, resumed = asyncio.run(scenario())

        # -- terminal states ------------------------------------------------
        assert fast_a.status() is SubmissionState.DONE
        assert fast_c.status() is SubmissionState.DONE
        assert slow_b.status() is SubmissionState.CANCELLED
        assert fast_a.result["g"].all_done and fast_c.result["g"].all_done

        # -- the cancel cut a running campaign, partial result retained -----
        cut_statuses = slow_b.result["g"].statuses()
        assert "interrupted" in cut_statuses.values()
        done_before_cut = {r for r, s in cut_statuses.items() if s == "done"}
        assert done_before_cut, "cancel should land after some runs finished"

        # -- resume executed exactly the cut set ----------------------------
        all_runs = {run.run_id for run in slow_manifest.runs}
        executed = set(resumed.result["g"].statuses())
        assert executed == all_runs - done_before_cut
        assert resumed.result["g"].all_done
        summary = directory.summary()
        assert summary.get("done") == len(all_runs)

        # -- fair share + priority: started order is C (priority), then B
        #    (lab-b least served), then A ------------------------------------
        started = [e.fields["submission"] for e in events
                   if e.name == SERVICE_STARTED]
        assert started[:3] == [fast_c.id, slow_b.id, fast_a.id]

        # -- backpressure was observable, not just an exception -------------
        saturated = [e for e in events if e.name == SERVICE_SATURATED]
        assert len(saturated) == 1
        assert saturated[0].fields["limit"] == 3

        # -- lifecycle instants ---------------------------------------------
        names = [e.name for e in events]
        assert names.count(SERVICE_SUBMITTED) == 4  # overflow never enqueued
        assert names.count(SERVICE_FINISHED) == 3   # A, C, resumed B
        cancelled = [e for e in events if e.name == SERVICE_CANCELLED]
        assert [e.fields["while"] for e in cancelled] == ["running"]

        # -- execution events forwarded and genuinely interleaved -----------
        spans = {}
        for i, e in enumerate(events):
            sid = e.fields.get("submission")
            if sid and not e.name.startswith("service."):
                lo, hi = spans.get(sid, (i, i))
                spans[sid] = (min(lo, i), max(hi, i))
        assert set(spans) >= {fast_a.id, slow_b.id, fast_c.id}
        b_lo, b_hi = spans[slow_b.id]
        c_lo, c_hi = spans[fast_c.id]
        assert b_lo < c_hi and c_lo < b_hi, "B and C events should interleave"
        # the resumed drive announced the skip on the monitoring bus
        resumed_events = [e for e in events
                          if e.fields.get("submission") == resumed.id]
        assert any(e.name == "group.resumed" for e in resumed_events)


class TestScheduler:
    def test_priority_then_fair_share_then_submission_order(self):
        events = []

        async def scenario():
            service = CampaignService(max_workers=1, max_queue_depth=8)
            service.bus.subscribe(events.append)
            handles = {}
            # Queue everything before the single worker starts.
            handles["a1"] = service.submit(make_manifest("a1", n=2),
                                           app_fn=app, tenant="lab-a")
            handles["a2"] = service.submit(make_manifest("a2", n=2),
                                           app_fn=app, tenant="lab-a")
            handles["b1"] = service.submit(make_manifest("b1", n=2),
                                           app_fn=app, tenant="lab-b")
            handles["b2"] = service.submit(make_manifest("b2", n=2),
                                           app_fn=app, tenant="lab-b")
            handles["hi"] = service.submit(make_manifest("hi", n=2),
                                           app_fn=app, tenant="lab-a",
                                           priority=1)
            async with service:
                await asyncio.gather(*(h.wait() for h in handles.values()))
            return handles

        handles = asyncio.run(scenario())
        started = [e.fields["submission"] for e in events
                   if e.name == SERVICE_STARTED]
        expected = [handles[k].id for k in ("hi", "b1", "a1", "b2", "a2")]
        assert started == expected

    def test_unknown_backend_fails_at_submit(self):
        service = CampaignService()
        with pytest.raises(KeyError):
            service.submit(make_manifest("m"), backend="no-such-backend")

    def test_submit_refused_while_stopping(self):
        async def scenario():
            service = CampaignService()
            async with service:
                pass
            with pytest.raises(RuntimeError, match="stopping"):
                service.submit(make_manifest("late"), app_fn=app)

        asyncio.run(scenario())


class TestBackpressure:
    def test_saturation_raises_and_emits(self):
        events = []
        service = CampaignService(max_queue_depth=2)
        service.bus.subscribe(events.append)
        first = service.submit(make_manifest("one"), app_fn=app)
        service.submit(make_manifest("two"), app_fn=app)
        assert service.saturated and service.queued == 2
        with pytest.raises(ServiceSaturated, match="queue is full"):
            service.submit(make_manifest("three"), app_fn=app)
        assert [e.name for e in events if e.name == SERVICE_SATURATED] == [
            SERVICE_SATURATED
        ]
        # cancelling a queued submission frees a slot again
        assert first.cancel()
        assert not service.saturated

    def test_queued_cancel_is_immediate(self):
        events = []
        service = CampaignService()
        service.bus.subscribe(events.append)
        handle = service.submit(make_manifest("q"), app_fn=app)
        assert handle.cancel()
        assert handle.status() is SubmissionState.CANCELLED
        assert handle.result is None
        cancelled = [e for e in events if e.name == SERVICE_CANCELLED]
        assert [e.fields["while"] for e in cancelled] == ["queued"]
        assert handle.cancel() is False  # terminal: nothing to do


class TestHandle:
    def test_done_submission_exposes_result(self):
        async def scenario():
            service = CampaignService(max_workers=1)
            async with service:
                handle = service.submit(make_manifest("ok", n=3),
                                        app_fn=app, tenant="t", priority=2)
                assert handle.campaign == "ok"
                assert handle.tenant == "t" and handle.priority == 2
                state = await handle.wait(timeout=30.0)
                assert state is SubmissionState.DONE
                assert handle.error is None
                assert handle.outcome() is handle.result
                assert handle.result["g"].values() == {
                    f"g/run-{i:04d}": i + 1 for i in range(3)
                }

        asyncio.run(scenario())

    def test_failed_submission_keeps_error(self):
        async def scenario():
            service = CampaignService(max_workers=1)
            async with service:
                # real backend without app_fn: the drive raises per-submission
                handle = service.submit(make_manifest("broken"))
                assert await handle.wait() is SubmissionState.FAILED
                assert isinstance(handle.error, Exception)
                with pytest.raises(Exception):
                    handle.outcome()
            # the failure stayed isolated: the service still drives others
            return service.submissions()

        submissions = asyncio.run(scenario())
        assert list(submissions.values()) == [SubmissionState.FAILED]

    def test_wait_timeout(self):
        async def scenario():
            service = CampaignService()  # never started: stays QUEUED
            handle = service.submit(make_manifest("stuck"), app_fn=app)
            with pytest.raises(asyncio.TimeoutError):
                await handle.wait(timeout=0.05)

        asyncio.run(scenario())

    def test_stop_without_drain_terminates_everything(self):
        async def scenario():
            service = CampaignService(max_workers=1)
            await service.start()
            slow = service.submit(make_manifest("slow", n=40, sleep=0.05),
                                  app_fn=app)
            queued = service.submit(make_manifest("queued"), app_fn=app)
            await wait_for(lambda: slow.status() is SubmissionState.RUNNING)
            await service.stop(drain=False)
            return slow.status(), queued.status()

        slow_state, queued_state = asyncio.run(scenario())
        assert slow_state is SubmissionState.CANCELLED
        assert queued_state is SubmissionState.CANCELLED


class TestThreadSafeBus:
    def test_concurrent_emission_keeps_seq_unique(self):
        bus = service_bus("test")
        assert isinstance(bus, ThreadSafeBus)
        events = []
        bus.subscribe(events.append)

        def hammer(tag):
            for i in range(200):
                bus.emit("tick", tag=tag, i=i)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(events) == 800
        seqs = [e.seq for e in events]
        assert len(set(seqs)) == 800

    def test_concurrent_publishers_lose_and_interleave_nothing(self):
        """Every emit from every publisher arrives exactly once, and each
        publisher's own events stay in emission order (the lock makes
        delivery atomic, so no subscriber sees a half-published event)."""
        bus = ThreadSafeBus(name="stress")
        events = []
        bus.subscribe(events.append)
        publishers, per_publisher = 8, 250
        barrier = threading.Barrier(publishers)

        def hammer(tag):
            barrier.wait()  # maximise overlap
            for i in range(per_publisher):
                bus.emit("tick", tag=tag, i=i)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(publishers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(events) == publishers * per_publisher
        for tag in range(publishers):
            mine = [e.fields["i"] for e in events if e.fields["tag"] == tag]
            assert mine == list(range(per_publisher))  # nothing lost, in order
        # seq is globally unique and delivery order matches assignment order
        assert [e.seq for e in events] == sorted(e.seq for e in events)

    def test_failing_subscriber_warns_once_under_concurrency(self):
        """Subscriber isolation: a raising subscriber never breaks
        delivery to the others, and its warning fires exactly once per
        (subscriber, event name) even with many racing publishers."""
        from repro.observability import SubscriberError

        bus = ThreadSafeBus(name="isolated")
        good: list = []

        def bad_one(event):
            raise RuntimeError("boom-1")

        def bad_two(event):
            raise RuntimeError("boom-2")

        bus.subscribe(bad_one)
        bus.subscribe(bad_two)
        bus.subscribe(good.append)
        barrier = threading.Barrier(6)

        def hammer():
            barrier.wait()
            for _ in range(100):
                bus.emit("tick")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(good) == 600  # the healthy subscriber saw everything
        isolation = [w for w in caught if issubclass(w.category, SubscriberError)]
        assert len(isolation) == 2  # once per failing subscriber, not per event
        assert {("boom-1" in str(w.message)) for w in isolation} == {True, False}


class TestCheckpointSingleWriter:
    def test_second_attach_on_same_directory_refused(self, tmp_path):
        manifest = make_manifest("guarded")
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        bus = service_bus("guard")
        first = CampaignCheckpoint(directory)
        second = CampaignCheckpoint(directory)
        first.attach(bus, owner="sub-0000")
        try:
            with pytest.raises(RuntimeError, match="sub-0000"):
                second.attach(bus)
        finally:
            first.detach()
        # released: a new writer may attach (and detach is idempotent)
        second.attach(bus)
        second.detach()
        second.detach()
