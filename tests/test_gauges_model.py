"""Tests for gauge profiles, components, and mechanical assessment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gauges.levels import (
    AccessTier,
    CustomizabilityTier,
    Gauge,
    GranularityTier,
    ProvenanceTier,
    SchemaTier,
    TIER_TYPES,
    max_tier,
    tier_matrix,
)
from repro.gauges.model import (
    ComponentKind,
    DataPort,
    GaugeProfile,
    ParameterRelation,
    SoftwareMetadata,
    WorkflowComponent,
    assess,
)
from repro.metadata.access import (
    AccessInterface,
    AccessProtocol,
    DataAccessDescriptor,
    QueryCapability,
)
from repro.metadata.provenance import CampaignContext, ExportPolicy
from repro.metadata.schema import DataSchema, Field
from repro.metadata.semantics import ConsumptionPattern, DataSemanticsDescriptor


class TestLevels:
    def test_six_gauges(self):
        assert len(list(Gauge)) == 6

    def test_data_software_split(self):
        data = [g for g in Gauge if g.is_data_gauge]
        software = [g for g in Gauge if g.is_software_gauge]
        assert len(data) == 3 and len(software) == 3

    def test_every_gauge_has_tier_type(self):
        for g in Gauge:
            assert g in TIER_TYPES

    def test_tiers_start_at_zero(self):
        for tier_type in TIER_TYPES.values():
            assert min(int(t) for t in tier_type) == 0

    def test_max_tier(self):
        assert max_tier(Gauge.DATA_ACCESS) == int(AccessTier.QUERY)

    def test_tier_matrix_covers_all_tiers(self):
        rows = tier_matrix()
        total = sum(len(t) for t in TIER_TYPES.values())
        assert len(rows) == total
        assert all(len(r) == 4 for r in rows)

    def test_tier_descriptions_are_per_gauge(self):
        """Regression: same-valued IntEnum members from different ladders
        hash equal — descriptions must not collide across gauges."""
        rows = tier_matrix()
        descriptions = [r[3] for r in rows]
        assert len(set(descriptions)) == len(descriptions)
        by_gauge_tier = {(r[0], r[1]): r[3] for r in rows}
        assert "protocol" in by_gauge_tier[("data-access", 1)].lower()
        assert "provenance" in by_gauge_tier[("software-provenance", 1)].lower()


class TestProfile:
    def test_baseline_all_zero(self):
        assert GaugeProfile.baseline().as_vector() == (0,) * 6

    def test_advance_raises_tier(self):
        p = GaugeProfile.baseline().advance(Gauge.DATA_ACCESS, AccessTier.INTERFACE)
        assert p.tier(Gauge.DATA_ACCESS) is AccessTier.INTERFACE

    def test_advance_rejects_non_increase(self):
        p = GaugeProfile.baseline().advance(Gauge.DATA_SCHEMA, SchemaTier.DECLARED)
        with pytest.raises(ValueError, match="must raise the tier"):
            p.advance(Gauge.DATA_SCHEMA, SchemaTier.OPAQUE)
        with pytest.raises(ValueError):
            p.advance(Gauge.DATA_SCHEMA, SchemaTier.DECLARED)

    def test_with_tier_allows_any_direction(self):
        p = GaugeProfile.baseline().with_tier(Gauge.DATA_SCHEMA, SchemaTier.DECLARED)
        p2 = p.with_tier(Gauge.DATA_SCHEMA, SchemaTier.OPAQUE)
        assert p2.tier(Gauge.DATA_SCHEMA) is SchemaTier.OPAQUE

    def test_dominates_reflexive_and_ordered(self):
        low = GaugeProfile.baseline()
        high = low.advance(Gauge.SOFTWARE_PROVENANCE, ProvenanceTier.EXECUTION_LOGS)
        assert high.dominates(low)
        assert high.dominates(high)
        assert not low.dominates(high)

    def test_incomparable_profiles(self):
        a = GaugeProfile.baseline().advance(Gauge.DATA_ACCESS, AccessTier.PROTOCOL)
        b = GaugeProfile.baseline().advance(Gauge.DATA_SCHEMA, SchemaTier.OPAQUE)
        assert not a.dominates(b) and not b.dominates(a)

    def test_dict_roundtrip(self):
        p = GaugeProfile(
            data_access=AccessTier.QUERY,
            software_customizability=CustomizabilityTier.MODELED,
        )
        assert GaugeProfile.from_dict(p.as_dict()) == p

    def test_profiles_are_immutable(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            GaugeProfile.baseline().data_access = AccessTier.QUERY


_GAUGES = list(Gauge)


@st.composite
def profiles(draw):
    kwargs = {}
    for gauge in _GAUGES:
        tier_type = TIER_TYPES[gauge]
        kwargs[GaugeProfile._FIELD_BY_GAUGE[gauge]] = draw(st.sampled_from(list(tier_type)))
    return GaugeProfile(**kwargs)


@given(profiles(), st.sampled_from(_GAUGES))
def test_advance_never_lowers_any_gauge(profile, gauge):
    """Property: advance() strictly raises the target gauge and touches
    nothing else."""
    current = int(profile.tier(gauge))
    top = max_tier(gauge)
    if current == top:
        with pytest.raises(ValueError):
            profile.advance(gauge, top)
        return
    raised = profile.advance(gauge, current + 1)
    assert int(raised.tier(gauge)) == current + 1
    for other in _GAUGES:
        if other is not gauge:
            assert raised.tier(other) == profile.tier(other)


@given(profiles(), profiles())
def test_dominates_is_antisymmetric_up_to_equality(a, b):
    if a.dominates(b) and b.dominates(a):
        assert a == b


class TestComponent:
    def test_duplicate_ports_rejected(self):
        with pytest.raises(ValueError, match="duplicate port"):
            WorkflowComponent(
                name="c",
                ports=(DataPort("x", "in"), DataPort("x", "out")),
            )

    def test_port_direction_validated(self):
        with pytest.raises(ValueError, match="direction"):
            DataPort("x", "sideways")

    def test_port_lookup_and_direction_filters(self):
        c = WorkflowComponent(
            name="c", ports=(DataPort("a", "in"), DataPort("b", "out"))
        )
        assert c.port("a").direction == "in"
        assert [p.name for p in c.inputs()] == ["a"]
        assert [p.name for p in c.outputs()] == ["b"]
        with pytest.raises(KeyError):
            c.port("zzz")


def full_port(name="data", direction="in", query=QueryCapability.LINEAR):
    return DataPort(
        name=name,
        direction=direction,
        access=DataAccessDescriptor(
            protocol=AccessProtocol.POSIX_FILE,
            interface=AccessInterface.DELIMITED_TEXT,
            query=query,
        ),
        schema=DataSchema("tsv", "1", (Field("v", "int64"),)),
        semantics=DataSemanticsDescriptor(consumption=ConsumptionPattern.ELEMENT),
    )


class TestAssess:
    def test_black_box_component(self):
        c = WorkflowComponent(name="mystery")
        profile = assess(c).profile
        assert profile.as_vector() == (0,) * 6

    def test_weakest_port_wins(self):
        strong = full_port("a", "in")
        weak = DataPort("b", "out")  # all-unknown descriptors
        c = WorkflowComponent(name="c", ports=(strong, weak))
        profile = assess(c).profile
        assert profile.tier(Gauge.DATA_ACCESS) is AccessTier.UNKNOWN
        assert profile.tier(Gauge.DATA_SCHEMA) is SchemaTier.UNKNOWN

    def test_query_tier_capped_without_schema(self):
        port = DataPort(
            name="d",
            direction="in",
            access=DataAccessDescriptor(
                protocol=AccessProtocol.DATABASE,
                interface=AccessInterface.SQL,
                query=QueryCapability.DECLARATIVE,
            ),
            # no schema at all
        )
        result = assess(WorkflowComponent(name="c", ports=(port,)))
        assert result.profile.tier(Gauge.DATA_ACCESS) is AccessTier.INTERFACE
        assert result.note_for(Gauge.DATA_ACCESS)

    def test_granularity_ladder(self):
        c = WorkflowComponent(
            name="c",
            software=SoftwareMetadata(kind=ComponentKind.EXECUTABLE),
        )
        assert assess(c).profile.tier(Gauge.SOFTWARE_GRANULARITY) is GranularityTier.COMPONENT
        c2 = WorkflowComponent(
            name="c2",
            software=SoftwareMetadata(
                kind=ComponentKind.EXECUTABLE, config_template="t"
            ),
        )
        assert assess(c2).profile.tier(Gauge.SOFTWARE_GRANULARITY) is GranularityTier.CONFIGURED

    def test_io_semantics_requires_all_ports_declared(self):
        declared = full_port("a", "in")
        undeclared = DataPort("b", "out")
        c = WorkflowComponent(
            name="c",
            ports=(declared, undeclared),
            software=SoftwareMetadata(kind=ComponentKind.EXECUTABLE, config_template="t"),
        )
        result = assess(c)
        assert result.profile.tier(Gauge.SOFTWARE_GRANULARITY) is GranularityTier.CONFIGURED
        assert result.note_for(Gauge.SOFTWARE_GRANULARITY)

    def test_io_semantics_tier_reached(self):
        c = WorkflowComponent(
            name="c",
            ports=(full_port("a", "in"), full_port("b", "out")),
            software=SoftwareMetadata(kind=ComponentKind.EXECUTABLE, config_template="t"),
        )
        assert assess(c).profile.tier(Gauge.SOFTWARE_GRANULARITY) is GranularityTier.IO_SEMANTICS

    def test_customizability_ladder(self):
        base = SoftwareMetadata(exposed_variables=("x",))
        c = WorkflowComponent(name="c", software=base)
        assert assess(c).profile.tier(Gauge.SOFTWARE_CUSTOMIZABILITY) is CustomizabilityTier.EXPOSED

    def test_related_tier_requires_campaign_provenance(self):
        sw = SoftwareMetadata(
            exposed_variables=("x", "y"),
            generation_model={"schema": "m"},
            parameter_relations=(ParameterRelation("x", "y", "scales-with"),),
            has_execution_logs=False,  # no provenance at all
        )
        result = assess(WorkflowComponent(name="c", software=sw))
        assert (
            result.profile.tier(Gauge.SOFTWARE_CUSTOMIZABILITY)
            is CustomizabilityTier.MODELED
        )
        assert result.note_for(Gauge.SOFTWARE_CUSTOMIZABILITY)

    def test_related_tier_reached_with_campaign(self):
        sw = SoftwareMetadata(
            exposed_variables=("x", "y"),
            generation_model={"schema": "m"},
            parameter_relations=(ParameterRelation("x", "y", "scales-with"),),
            has_execution_logs=True,
            campaign=CampaignContext("s", "o"),
        )
        result = assess(WorkflowComponent(name="c", software=sw))
        assert (
            result.profile.tier(Gauge.SOFTWARE_CUSTOMIZABILITY)
            is CustomizabilityTier.RELATED
        )

    def test_provenance_ladder(self):
        sw = SoftwareMetadata(
            has_execution_logs=True,
            campaign=CampaignContext("s", "o"),
            export_policy=ExportPolicy(),
        )
        result = assess(WorkflowComponent(name="c", software=sw))
        assert result.profile.tier(Gauge.SOFTWARE_PROVENANCE) is ProvenanceTier.EXPORTABLE

    def test_campaign_without_logs_stays_none(self):
        sw = SoftwareMetadata(campaign=CampaignContext("s", "o"))
        result = assess(WorkflowComponent(name="c", software=sw))
        assert result.profile.tier(Gauge.SOFTWARE_PROVENANCE) is ProvenanceTier.NONE
