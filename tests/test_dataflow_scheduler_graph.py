"""Tests for the data scheduler (virtual queues) and the graph run loop."""

import pytest

from repro.dataflow.channels import Channel, DataItem, Punctuation
from repro.dataflow.components import ControlSource, Sink, Source
from repro.dataflow.datascheduler import DataScheduler
from repro.dataflow.graph import DataflowGraph, GraphValidationError
from repro.dataflow.policies import ForwardAll, SampleEveryK, SlidingWindowTime


def build(subscribers=("a", "b"), items=10, script=(), watch_sched=True, capacity=1024):
    g = DataflowGraph("t")
    sched = g.add(DataScheduler("sched", subscribers=subscribers))
    src = g.add(Source("src", ({"v": i} for i in range(items))))
    ctrl = g.add(
        ControlSource("ctrl", list(script), watch=sched if watch_sched else None)
    )
    sinks = {}
    g.connect(src, "out", sched, "in")
    g.connect(ctrl, "out", sched, "control")
    for name in subscribers:
        sink = g.add(Sink(f"sink-{name}"))
        g.connect(sched, name, sink, "in", capacity=capacity)
        sinks[name] = sink
    return g, sched, sinks


class TestDefaults:
    def test_forward_all_to_every_subscriber(self):
        g, sched, sinks = build()
        g.run()
        assert len(sinks["a"].received) == 10
        assert len(sinks["b"].received) == 10
        assert sched.queue_stats()["a"]["policy"] == "forward-all"

    def test_needs_subscribers(self):
        with pytest.raises(ValueError):
            DataScheduler("s", subscribers=())


class TestControl:
    def test_install_policy_applies_from_watermark(self):
        script = [(5, Punctuation("install-policy", ("a", SampleEveryK(5))))]
        g, sched, sinks = build(script=script)
        g.run()
        # first 5 forwarded, then every 5th of the remaining 5
        assert len(sinks["a"].received) == 6
        assert len(sinks["b"].received) == 10
        assert sched.queues["a"].installs == [(5, "sample-every-k")]

    def test_deactivate_and_activate(self):
        script = [
            (3, Punctuation("deactivate", "a")),
            (7, Punctuation("activate", "a")),
        ]
        g, sched, sinks = build(script=script)
        g.run()
        assert len(sinks["a"].received) == 6  # missed items 3..6
        assert len(sinks["b"].received) == 10

    def test_group_boundary_forwarded(self):
        script = [(2, Punctuation("group-boundary", "batch-1"))]
        g, sched, sinks = build(script=script)
        g.run()
        assert [p.kind for p in sinks["a"].punctuation] == ["group-boundary"]

    def test_unknown_command_raises(self):
        g, sched, sinks = build(script=[(0, Punctuation("fire-lasers"))])
        with pytest.raises(ValueError, match="unknown control command"):
            g.run()

    def test_unknown_queue_raises(self):
        script = [(0, Punctuation("install-policy", ("ghost", ForwardAll())))]
        g, sched, sinks = build(script=script)
        with pytest.raises(KeyError, match="no virtual queue"):
            g.run()

    def test_non_policy_payload_rejected(self):
        script = [(0, Punctuation("install-policy", ("a", "not-a-policy")))]
        g, sched, sinks = build(script=script)
        with pytest.raises(TypeError, match="SelectionPolicy"):
            g.run()

    def test_data_on_control_channel_rejected(self):
        sched = DataScheduler("s", subscribers=("a",))
        sched.bind_input("in", Channel("i"))
        control = Channel("c")
        sched.bind_input("control", control)
        sched.bind_output("a", Channel("o"))
        control._queue.append(DataItem(payload=1))  # bypass channel typing
        with pytest.raises(TypeError, match="only Punctuation"):
            sched.step()


class TestBackpressure:
    def test_amplifying_policy_with_tiny_channel(self):
        """A window-time policy amplifies ~10x; a capacity-4 channel must
        not overflow — releases trickle through the backlog."""
        script = [(0, Punctuation("install-policy", ("a", SlidingWindowTime(10.0))))]
        g, sched, sinks = build(subscribers=("a",), items=50, script=script, capacity=4)
        g.run()
        assert len(sinks["a"].received) > 50  # amplification happened
        assert sched.queue_stats()["a"]["emitted"] == len(sinks["a"].received)

    def test_flush_at_eos_delivered(self):
        from repro.dataflow.policies import SlidingWindowCount

        script = [(0, Punctuation("install-policy", ("a", SlidingWindowCount(4))))]
        g, sched, sinks = build(subscribers=("a",), items=6, script=script)
        g.run()
        # one full window (4) plus the flushed partial (2)
        assert len(sinks["a"].received) == 6


class TestGraphValidation:
    def test_unbound_port_rejected(self):
        g = DataflowGraph("t")
        g.add(Sink("k"))
        with pytest.raises(GraphValidationError, match="unbound ports"):
            g.run()

    def test_duplicate_component_rejected(self):
        g = DataflowGraph("t")
        g.add(Sink("k"))
        with pytest.raises(GraphValidationError, match="duplicate"):
            g.add(Sink("k"))

    def test_unknown_component_in_connect(self):
        g = DataflowGraph("t")
        with pytest.raises(GraphValidationError, match="unknown component"):
            g.connect("ghost", "out", "ghost2", "in")

    def test_component_not_added_rejected(self):
        g = DataflowGraph("t")
        s = Source("s", range(1))
        k = Sink("k")
        g.add(k)
        with pytest.raises(GraphValidationError, match="not added"):
            g.connect(s, "out", k, "in")

    def test_cycle_detected(self):
        from repro.dataflow.components import Transform

        g = DataflowGraph("t")
        a = g.add(Transform("a", lambda v: v))
        b = g.add(Transform("b", lambda v: v))
        g.connect(a, "out", b, "in")
        g.connect(b, "out", a, "in")
        with pytest.raises(GraphValidationError, match="cycle"):
            g.run()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError, match="no components"):
            DataflowGraph("t").run()

    def test_metrics_shape(self):
        g, sched, sinks = build(items=5)
        metrics = g.run()
        assert metrics["rounds"] >= 5
        assert metrics["items_moved"] > 0
        assert "sched" in metrics["per_component"]

    def test_stall_detected_with_backlog_report(self):
        """A component that stops consuming must fail loudly, naming the
        stuck channels — not hang."""
        from repro.dataflow.components import Component, Source

        class Stuck(Component):
            def __init__(self):
                super().__init__("stuck", inputs=("in",))

            def step(self):
                return False  # never consumes

            def finished(self):
                return False

        g = DataflowGraph("stall")
        src = g.add(Source("s", range(3)))
        stuck = g.add(Stuck())
        g.connect(src, "out", stuck, "in")
        with pytest.raises(RuntimeError, match="stalled with backlog"):
            g.run()

    def test_max_rounds_guard(self):
        """An endlessly busy component trips the round limit."""
        from repro.dataflow.components import Component

        class Spinner(Component):
            def __init__(self):
                super().__init__("spin")

            def step(self):
                return True  # always claims progress

            def finished(self):
                return False

        g = DataflowGraph("spin")
        g.add(Spinner())
        with pytest.raises(RuntimeError, match="exceeded"):
            g.run(max_rounds=50)
