"""Tests for utilization traces."""

import numpy as np
import pytest

from repro.cluster.node import Node
from repro.cluster.trace import UtilizationTrace


def make_nodes():
    a = Node(index=0)
    a.mark_busy(0.0)
    a.mark_idle(5.0)
    b = Node(index=1)
    b.mark_busy(5.0)
    b.mark_idle(10.0)
    return [a, b]


class TestUtilization:
    def test_half_busy(self):
        trace = UtilizationTrace.from_nodes(make_nodes(), 0.0, 10.0)
        assert trace.utilization() == pytest.approx(0.5)
        assert trace.idle_fraction() == pytest.approx(0.5)

    def test_full_busy(self):
        node = Node(index=0)
        node.mark_busy(0.0)
        node.mark_idle(10.0)
        trace = UtilizationTrace.from_nodes([node], 0.0, 10.0)
        assert trace.utilization() == pytest.approx(1.0)

    def test_clipping_to_window(self):
        node = Node(index=0)
        node.mark_busy(0.0)
        node.mark_idle(100.0)
        trace = UtilizationTrace.from_nodes([node], 40.0, 60.0)
        assert trace.utilization() == pytest.approx(1.0)
        assert trace.rows[0].intervals == [(40.0, 60.0)]

    def test_interval_outside_window_dropped(self):
        node = Node(index=0)
        node.mark_busy(0.0)
        node.mark_idle(5.0)
        trace = UtilizationTrace.from_nodes([node], 10.0, 20.0)
        assert trace.rows[0].intervals == []
        assert trace.utilization() == 0.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            UtilizationTrace.from_nodes(make_nodes(), 5.0, 5.0)

    def test_no_nodes(self):
        trace = UtilizationTrace(start=0.0, end=1.0, rows=[])
        assert trace.utilization() == 0.0


class TestSeries:
    def test_busy_nodes_series_counts(self):
        trace = UtilizationTrace.from_nodes(make_nodes(), 0.0, 10.0)
        ts, counts = trace.busy_nodes_series(samples=10)
        # Exactly one node busy at every sampled instant.
        assert np.all(counts == 1)

    def test_series_zero_when_idle(self):
        node = Node(index=0)
        node.mark_busy(0.0)
        node.mark_idle(1.0)
        trace = UtilizationTrace.from_nodes([node], 0.0, 10.0)
        ts, counts = trace.busy_nodes_series(samples=10)
        assert counts[0] == 1
        assert np.all(counts[2:] == 0)

    def test_ascii_timeline_shape(self):
        trace = UtilizationTrace.from_nodes(make_nodes(), 0.0, 10.0)
        text = trace.ascii_timeline(width=20)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "#" in lines[0] and "." in lines[0]
        # node 0 busy first half, node 1 second half
        assert lines[0].index("#") < lines[1].index("#")
