"""Tests for the FAIR5xx concurrency-safety stack beyond the fire/silent
pairs in ``test_lint_rules.py``: interprocedural reach, role-based
severity, the drive/service gates, the incremental cache, the auto-fix
engine, and the CLI surface.

The fixture app functions live in ``lint_fixture_apps`` (a real module,
because ``lint_app_fn`` resolves callables through their module source).
"""

from __future__ import annotations

import json
import textwrap

import pytest

import lint_fixture_apps as fixture_apps
from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, resolve_campaign_dir
from repro.lint import fix_source, lint_app_fn, lint_path, lint_paths
from repro.lint import cache as lint_cache
from repro.lint.__main__ import main as lint_main
from repro.lint.engine import CampaignLintError
from repro.lint.findings import Severity
from repro.savanna import CampaignService, execute_manifest


def make_manifest(name="conc", n=2, metadata=None):
    camp = Campaign(name, app=AppSpec("conc-app"), metadata=metadata or {})
    sg = camp.sweep_group("g", nodes=1, walltime=60.0)
    sg.add(Sweep([SweepParameter("x", range(n))]))
    return camp.to_manifest()


def rule_ids(report):
    return [f.rule_id for f in report.findings]


# -- analysis depth -----------------------------------------------------------


class TestInterprocedural:
    def test_violation_in_reachable_helper_is_found(self):
        report = lint_app_fn(fixture_apps.calls_noisy_helper, pool="threads")
        assert "FAIR502" in rule_ids(report)
        finding = next(f for f in report.findings if f.rule_id == "FAIR502")
        assert "_noisy_helper" in finding.location  # blamed at the callee site

    def test_helper_seeding_counts_as_evidence(self):
        # seeded() seeds both ambient RNGs from the params — silent.
        report = lint_app_fn(fixture_apps.seeded, pool="threads")
        assert "FAIR502" not in rule_ids(report)

    def test_worker_role_escalates_to_error(self):
        report = lint_app_fn(fixture_apps.mutates_global, pool="threads")
        fair501 = [f for f in report.findings if f.rule_id == "FAIR501"]
        assert fair501 and all(f.severity is Severity.ERROR for f in fair501)

    def test_file_scan_softens_to_warning(self, tmp_path):
        # The same pattern found by a plain file scan (role unknown —
        # nothing says this function ever runs on a worker pool) is a
        # WARNING, not a gate.
        source = tmp_path / "maybe_worker.py"
        source.write_text(
            textwrap.dedent(
                """
                TOTAL = 0.0

                def accumulate(params):
                    global TOTAL
                    TOTAL += params["x"]
                    return TOTAL
                """
            )
        )
        report = lint_path(source)
        fair501 = [f for f in report.findings if f.rule_id == "FAIR501"]
        assert fair501 and all(f.severity is Severity.WARNING for f in fair501)

    def test_pickle_probe_names_the_closure(self):
        report = lint_app_fn(fixture_apps.make_closure_app(), pool="processes")
        fair503 = [f for f in report.findings if f.rule_id == "FAIR503"]
        assert fair503 and fair503[0].severity is Severity.ERROR
        # ...and the same callable is fine under threads.
        assert "FAIR503" not in rule_ids(
            lint_app_fn(fixture_apps.make_closure_app(), pool="threads")
        )

    def test_suppression_moves_findings_aside(self):
        report = lint_app_fn(
            fixture_apps.mutates_global, pool="threads", suppress=("FAIR501",)
        )
        assert "FAIR501" not in rule_ids(report)
        assert "FAIR501" in [f.rule_id for f in report.suppressed]
        assert not report.errors


# -- zero false positives on the shipped corpus -------------------------------


class TestShippedCodeStaysClean:
    @pytest.mark.parametrize("tree", ["examples", "src/repro/apps"])
    def test_no_fair5xx_findings(self, tree):
        report = lint_paths([tree], cache=False)
        noisy = [f for f in report.findings if f.rule_id.startswith("FAIR5")]
        assert noisy == []


# -- the drive gate -----------------------------------------------------------


class TestDriveGate:
    def test_refuses_error_finding_under_processes(self, tmp_path):
        with pytest.raises(CampaignLintError) as err:
            execute_manifest(
                make_manifest("gated"),
                backend="local-processes",
                app_fn=fixture_apps.mutates_global,
                directory=tmp_path,
            )
        assert "FAIR501" in str(err.value)

    def test_lint_false_overrides(self, tmp_path):
        result = execute_manifest(
            make_manifest("ungated"),
            backend="local-threads",
            app_fn=fixture_apps.mutates_global,
            directory=tmp_path,
            lint=False,
        )
        assert result.all_done

    def test_manifest_suppression_admits_and_persists(self, tmp_path):
        manifest = make_manifest(
            "waved-through",
            metadata={"lint": {"suppress": ["FAIR501"]}},
        )
        result = execute_manifest(
            manifest,
            backend="local-threads",
            app_fn=fixture_apps.mutates_global,
            directory=tmp_path,
        )
        assert result.all_done
        directory = resolve_campaign_dir(tmp_path / "waved-through")
        stored = directory.read_lint_report()
        assert stored is not None
        assert "FAIR501" in [f.rule_id for f in stored.suppressed]

    def test_clean_app_report_is_persisted(self, tmp_path):
        manifest = make_manifest("clean-run")
        execute_manifest(
            manifest,
            backend="local-threads",
            app_fn=fixture_apps.clean,
            directory=tmp_path,
        )
        payload = json.loads(
            (tmp_path / "clean-run" / ".cheetah" / "lint.json").read_text()
        )
        assert payload["schema"] == "repro.lint.report/v1"
        assert payload["campaign"] == "clean-run"


# -- the service gate ---------------------------------------------------------


class TestServiceGate:
    def test_submit_refuses_error_finding(self):
        service = CampaignService()
        with pytest.raises(CampaignLintError):
            service.submit(
                make_manifest("svc-gated"),
                backend="local-processes",
                app_fn=fixture_apps.mutates_global,
            )
        assert service.queued == 0  # refused before queueing

    def test_warning_findings_ride_on_the_handle(self):
        service = CampaignService()
        handle = service.submit(
            make_manifest("svc-warned"),
            backend="local-threads",
            app_fn=fixture_apps.unseeded,
        )
        assert handle.lint_report is not None
        assert "FAIR502" in [f.rule_id for f in handle.lint_report.findings]
        assert not handle.lint_report.errors

    def test_lint_false_and_simulated_skip_the_gate(self):
        service = CampaignService()
        opted_out = service.submit(
            make_manifest("svc-optout"),
            backend="local-processes",
            app_fn=fixture_apps.mutates_global,
            lint=False,
        )
        assert opted_out.lint_report is None
        simulated = service.submit(make_manifest("svc-sim"))
        assert simulated.lint_report is None


# -- the incremental cache ----------------------------------------------------


def _campaign_dir_with_source(tmp_path, name="cached", script="print('hi')\n"):
    manifest = make_manifest(name)
    directory = CampaignDirectory(tmp_path, manifest)
    directory.create()
    (directory.root / "analysis.py").write_text(script)
    return directory.root


class TestIncrementalCache:
    def test_warm_lint_hits_the_cache(self, tmp_path):
        root = _campaign_dir_with_source(tmp_path)
        cold = lint_path(root)
        cache_file = lint_cache.cache_path_for(root)
        assert cache_file.is_file()
        payload = json.loads(cache_file.read_text())
        assert payload["schema"] == lint_cache.CACHE_SCHEMA
        warm = lint_path(root)
        assert rule_ids(warm) == rule_ids(cold)

    def test_source_change_invalidates(self, tmp_path):
        root = _campaign_dir_with_source(tmp_path)
        cold = lint_path(root)
        assert "FAIR501" not in rule_ids(cold)
        (root / "analysis.py").write_text(
            "STATE = {}\n\ndef f(params):\n    STATE[1] = params\n    return 1\n"
        )
        changed = lint_path(root)
        assert "FAIR501" in rule_ids(changed)

    def test_suppress_set_is_part_of_the_key(self, tmp_path):
        root = _campaign_dir_with_source(
            tmp_path,
            script="STATE = {}\n\ndef f(params):\n    STATE[1] = params\n    return 1\n",
        )
        plain = lint_path(root)
        assert "FAIR501" in rule_ids(plain)
        quiet = lint_path(root, suppress=("FAIR501",))
        assert "FAIR501" not in rule_ids(quiet)
        # and flipping back still sees the (differently-keyed) finding
        assert "FAIR501" in rule_ids(lint_path(root))

    def test_corrupt_cache_is_a_miss_not_a_crash(self, tmp_path):
        root = _campaign_dir_with_source(tmp_path)
        lint_path(root)
        lint_cache.cache_path_for(root).write_text("not json{")
        report = lint_path(root)  # recomputed and re-stored
        assert json.loads(lint_cache.cache_path_for(root).read_text())["digest"]
        assert rule_ids(report) == rule_ids(lint_path(root))

    def test_cache_false_neither_reads_nor_writes(self, tmp_path):
        root = _campaign_dir_with_source(tmp_path)
        lint_path(root, cache=False)
        assert not lint_cache.cache_path_for(root).exists()


# -- the auto-fix engine ------------------------------------------------------


UNSEEDED_WRITER = textwrap.dedent(
    """
    import random

    def app(params):
        value = random.random() + params["x"]
        try:
            with open("shared.txt", "a") as fh:
                fh.write(str(value))
        except:
            pass
        return value
    """
)


class TestAutoFix:
    def test_fixed_output_relints_clean_and_compiles(self):
        outcome = fix_source(UNSEEDED_WRITER, "app.py")
        assert {f.rule_id for f in outcome.applied} == {
            "FAIR303",
            "FAIR502",
            "FAIR504",
        }
        compile(outcome.fixed, "app.py", "exec")  # still valid Python
        assert "except Exception:" in outcome.fixed
        assert "_run_seed" in outcome.fixed
        from repro.lint import lint_source

        fixed_ids = [f.rule_id for f in lint_source(outcome.fixed, "app.py").findings]
        assert "FAIR502" not in fixed_ids
        assert "FAIR504" not in fixed_ids
        assert "FAIR303" not in fixed_ids

    def test_diff_is_a_valid_unified_diff(self):
        outcome = fix_source(UNSEEDED_WRITER, "app.py")
        diff = outcome.diff()
        assert diff.startswith("--- app.py")
        assert "+++ app.py (fixed)" in diff.splitlines()[1]
        assert any(line.startswith("@@") for line in diff.splitlines())
        # applying the diff's additions/removals reproduces the rewrite
        assert diff.count("\n+") >= 3

    def test_clean_source_is_untouched(self):
        clean = "def app(params):\n    return params['x'] ** 2\n"
        outcome = fix_source(clean, "clean.py")
        assert not outcome.changed
        assert outcome.fixed == clean
        assert outcome.diff() == ""


# -- the CLI ------------------------------------------------------------------


class TestCLI:
    def test_unknown_suppress_id_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            lint_main(["examples", "--suppress", "FAIR501,NOPE999"])
        assert exc.value.code == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_comma_separated_suppress_accepted(self, tmp_path, capsys):
        source = tmp_path / "app.py"
        source.write_text(
            "STATE = {}\n\ndef f(params):\n    STATE[1] = params\n    return 1\n"
        )
        assert lint_main([str(source), "--suppress", "FAIR501,FAIR502"]) == 0

    def test_fail_on_warn_and_output_artifact(self, tmp_path, capsys):
        source = tmp_path / "app.py"
        source.write_text(
            "import random\n\ndef f(params):\n    return random.random()\n"
        )
        artifact = tmp_path / "report.json"
        code = lint_main(
            [str(source), "--fail-on", "warn", "--format", "json",
             "--output", str(artifact)]
        )
        assert code == 1
        payload = json.loads(artifact.read_text())
        assert any(res["ruleId"] == "FAIR502" for res in payload["results"])

    def test_no_cache_flag(self, tmp_path):
        manifest = make_manifest("cli-nocache")
        CampaignDirectory(tmp_path, manifest).create()
        root = tmp_path / "cli-nocache"
        assert lint_main([str(root), "--no-cache"]) == 0
        assert not lint_cache.cache_path_for(root).exists()

    def test_fix_dry_run_prints_diff_and_leaves_file(self, tmp_path, capsys):
        source = tmp_path / "app.py"
        source.write_text(UNSEEDED_WRITER)
        assert lint_main([str(source), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "--- " in out and "dry run" in out
        assert source.read_text() == UNSEEDED_WRITER  # untouched

    def test_fix_write_applies(self, tmp_path, capsys):
        source = tmp_path / "app.py"
        source.write_text(UNSEEDED_WRITER)
        assert lint_main([str(source), "--fix", "--write"]) == 0
        assert "_run_seed" in source.read_text()

    def test_write_without_fix_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            lint_main([str(tmp_path), "--write"])
        assert exc.value.code == 2
