"""Tests for the parallel-filesystem model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.filesystem import FilesystemLoadModel, ParallelFilesystem


class TestConstantLoad:
    def test_write_time_is_bytes_over_bandwidth(self):
        fs = ParallelFilesystem(peak_bandwidth=1e9, load_model=None)
        assert fs.write_time(int(2e9), now=0.0) == pytest.approx(2.0)

    def test_read_time_symmetric(self):
        fs = ParallelFilesystem(peak_bandwidth=1e9, load_model=None)
        assert fs.read_time(int(1e9), now=0.0) == pytest.approx(1.0)

    def test_load_is_one_without_model(self):
        fs = ParallelFilesystem(load_model=None)
        assert fs.current_load(100.0) == 1.0

    def test_bytes_written_accumulates(self):
        fs = ParallelFilesystem(peak_bandwidth=1e9, load_model=None)
        fs.write_time(100, 0.0)
        fs.write_time(200, 1.0)
        assert fs.bytes_written == 300
        assert len(fs.write_log) == 2

    def test_negative_bytes_rejected(self):
        fs = ParallelFilesystem(load_model=None)
        with pytest.raises(ValueError):
            fs.write_time(-1, 0.0)


class TestStochasticLoad:
    def test_load_never_below_one(self):
        fs = ParallelFilesystem(load_model=FilesystemLoadModel(mean_load=1.2, sigma=0.8), seed=3)
        loads = [fs.current_load(t * 60.0) for t in range(200)]
        assert all(l >= 1.0 for l in loads)

    def test_load_varies_over_time(self):
        fs = ParallelFilesystem(load_model=FilesystemLoadModel(), seed=3)
        loads = {round(fs.current_load(t * 600.0), 6) for t in range(20)}
        assert len(loads) > 5

    def test_deterministic_per_seed(self):
        a = ParallelFilesystem(load_model=FilesystemLoadModel(), seed=11)
        b = ParallelFilesystem(load_model=FilesystemLoadModel(), seed=11)
        for t in range(5):
            assert a.current_load(t * 100.0) == b.current_load(t * 100.0)

    def test_write_slower_under_load(self):
        loaded = ParallelFilesystem(
            peak_bandwidth=1e9,
            load_model=FilesystemLoadModel(mean_load=4.0, sigma=0.0),
            seed=0,
        )
        clean = ParallelFilesystem(peak_bandwidth=1e9, load_model=None)
        assert loaded.write_time(int(1e9), 10.0) > clean.write_time(int(1e9), 10.0)

    def test_mean_reversion_toward_mean_load(self):
        """Long-run average load should sit near mean_load."""
        import numpy as np

        model = FilesystemLoadModel(mean_load=2.0, sigma=0.3, theta=1 / 60.0)
        fs = ParallelFilesystem(load_model=model, seed=5)
        loads = [fs.current_load(t * 120.0) for t in range(500)]
        assert 1.4 < np.mean(loads) < 2.8


class TestMetadataCost:
    def test_superlinear_past_knee(self):
        fs = ParallelFilesystem(load_model=None)
        below = fs.metadata_op_time(900, 0.0)
        above = fs.metadata_op_time(9000, 0.0)
        # Past the knee, 10x files costs far more than 10x time.
        assert above > 10 * below

    def test_linear_below_knee(self):
        fs = ParallelFilesystem(load_model=None)
        assert fs.metadata_op_time(500, 0.0) == pytest.approx(2 * fs.metadata_op_time(250, 0.0))

    def test_zero_files(self):
        fs = ParallelFilesystem(load_model=None)
        assert fs.metadata_op_time(0, 0.0) == 0.0


class TestValidation:
    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            ParallelFilesystem(peak_bandwidth=0)

    def test_bad_model_params_rejected(self):
        with pytest.raises(ValueError):
            FilesystemLoadModel(mean_load=0)
        with pytest.raises(ValueError):
            FilesystemLoadModel(sigma=-1)
        with pytest.raises(ValueError):
            FilesystemLoadModel(theta=0)


@given(st.integers(min_value=0, max_value=10**15))
def test_write_time_nonnegative_and_monotone_in_bytes(nbytes):
    fs = ParallelFilesystem(peak_bandwidth=1e12, load_model=None)
    t = fs.write_time(nbytes, 0.0)
    assert t >= 0
    assert fs.write_time(nbytes * 2, 0.0) >= t
