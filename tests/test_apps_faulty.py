"""Tests for checkpoint-restart under injected failures."""

import pytest

from repro.apps.simulation.checkpoint import FixedIntervalPolicy, OverheadBudgetPolicy
from repro.apps.simulation.faulty import (
    policy_comparison_under_failures,
    run_to_completion,
)
from repro.apps.simulation.run import RunConfig


def config(timesteps=40):
    return RunConfig(timesteps=timesteps, grid_n=16)


class TestRunToCompletion:
    def test_completes_without_failures(self):
        report = run_to_completion(
            config(), FixedIntervalPolicy(10), job_mttf=1e12, seed=1
        )
        assert report.failures == 0
        assert report.redone_steps == 0
        assert report.waste_fraction < 0.5

    def test_failures_cause_redone_work(self):
        report = run_to_completion(
            config(), FixedIntervalPolicy(10), job_mttf=300.0, seed=0
        )
        assert report.failures > 0
        assert report.redone_steps > 0
        assert report.restart_seconds > 0

    def test_total_time_decomposition(self):
        report = run_to_completion(
            config(), FixedIntervalPolicy(5), job_mttf=2000.0, seed=3
        )
        # wall time covers useful compute + io + restarts (redone compute
        # is the remainder)
        assert report.total_seconds >= (
            report.useful_compute_seconds + report.io_seconds + report.restart_seconds
        ) - 1e-6

    def test_deterministic_per_seed(self):
        a = run_to_completion(config(), FixedIntervalPolicy(8), job_mttf=900.0, seed=7)
        b = run_to_completion(config(), FixedIntervalPolicy(8), job_mttf=900.0, seed=7)
        assert a.total_seconds == b.total_seconds
        assert a.failures == b.failures

    def test_livelock_guard(self):
        """A checkpoint-free policy on a hopeless MTTF must raise, not spin."""

        class NeverCheckpoint(FixedIntervalPolicy):
            def __init__(self):
                super().__init__(interval=10**9)

        with pytest.raises(RuntimeError, match="no forward progress"):
            run_to_completion(
                config(timesteps=30),
                NeverCheckpoint(),
                job_mttf=120.0,
                max_failures=50,
                seed=4,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            run_to_completion(config(), FixedIntervalPolicy(5), job_mttf=0)


class TestPolicyValueUnderFailures:
    def test_checkpointing_beats_no_checkpointing_on_flaky_machine(self):
        """With failures present, paying checkpoint I/O is cheaper than
        losing whole runs — the §V-B motivation, quantified."""
        sparse = run_to_completion(
            config(), FixedIntervalPolicy(40), job_mttf=1500.0, seed=5
        )
        regular = run_to_completion(
            config(), FixedIntervalPolicy(5), job_mttf=1500.0, seed=5
        )
        assert regular.redone_steps < sparse.redone_steps

    def test_comparison_runs_all_policies(self):
        reports = policy_comparison_under_failures(
            [FixedIntervalPolicy(5), OverheadBudgetPolicy(0.10)],
            config=config(),
            job_mttf=3000.0,
            seed=6,
        )
        assert len(reports) == 2
        assert {r.policy_name for r in reports} == {
            "fixed-interval(5)",
            "overhead-budget(10%)",
        }
