"""Tests for the Skel template engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.skel.templates import Template, TemplateError


class TestSubstitution:
    def test_simple_variable(self):
        assert Template("hi ${name}").render({"name": "x"}) == "hi x"

    def test_dotted_lookup_through_dict(self):
        assert Template("${a.b.c}").render({"a": {"b": {"c": 7}}}) == "7"

    def test_dotted_lookup_through_attribute(self):
        class Obj:
            value = 42

        assert Template("${o.value}").render({"o": Obj()}) == "42"

    def test_undefined_variable_raises(self):
        with pytest.raises(TemplateError, match="undefined template variable"):
            Template("${ghost}").render({})

    def test_undefined_nested_raises(self):
        with pytest.raises(TemplateError, match="undefined template variable"):
            Template("${a.missing}").render({"a": {}})

    def test_dollar_escape(self):
        assert Template("cost $$5").render({}) == "cost $5"

    def test_literal_text_untouched(self):
        text = "no placeholders here {not a tag}"
        assert Template(text).render({}) == text

    def test_invalid_variable_name_rejected_at_parse(self):
        with pytest.raises(TemplateError, match="invalid variable reference"):
            Template("${1bad}")


class TestFilters:
    @pytest.mark.parametrize(
        "template,context,expected",
        [
            ("${x|upper}", {"x": "ab"}, "AB"),
            ("${x|lower}", {"x": "AB"}, "ab"),
            ("${x|int}", {"x": 3.7}, "3"),
            ("${x|len}", {"x": [1, 2, 3]}, "3"),
            ("${x|basename}", {"x": "/a/b/c.txt"}, "c.txt"),
        ],
    )
    def test_filters(self, template, context, expected):
        assert Template(template).render(context) == expected

    def test_json_filter_sorted(self):
        out = Template("${x|json}").render({"x": {"b": 1, "a": 2}})
        assert out == '{"a": 2, "b": 1}'

    def test_chained_filters(self):
        assert Template("${x|basename|upper}").render({"x": "/p/file.sh"}) == "FILE.SH"

    def test_unknown_filter_raises(self):
        with pytest.raises(TemplateError, match="unknown filter"):
            Template("${x|nope}").render({"x": 1})


class TestFor:
    def test_basic_loop(self):
        out = Template("{% for i in items %}${i},{% endfor %}").render({"items": [1, 2]})
        assert out == "1,2,"

    def test_loop_index_and_first(self):
        t = Template("{% for i in items %}${loop.index}${i}{% endfor %}")
        assert t.render({"items": "ab"}) == "0a1b"

    def test_nested_loops(self):
        t = Template(
            "{% for row in grid %}{% for cell in row %}${cell}{% endfor %};{% endfor %}"
        )
        assert t.render({"grid": [[1, 2], [3]]}) == "12;3;"

    def test_loop_over_dict_items_via_attribute(self):
        t = Template("{% for g in groups %}${g.index}:{% endfor %}")
        assert t.render({"groups": [{"index": 0}, {"index": 1}]}) == "0:1:"

    def test_empty_iterable(self):
        assert Template("{% for i in items %}x{% endfor %}").render({"items": []}) == ""

    def test_non_iterable_raises(self):
        with pytest.raises(TemplateError, match="not iterable"):
            Template("{% for i in items %}{% endfor %}").render({"items": 5})

    def test_unclosed_for_rejected(self):
        with pytest.raises(TemplateError, match="unclosed for"):
            Template("{% for i in items %}x")

    def test_endfor_without_for_rejected(self):
        with pytest.raises(TemplateError, match="endfor without"):
            Template("{% endfor %}")

    def test_loop_variable_scoped(self):
        t = Template("{% for i in items %}{% endfor %}${i}")
        with pytest.raises(TemplateError):
            t.render({"items": [1]})


class TestIf:
    def test_truthiness(self):
        t = Template("{% if flag %}on{% endif %}")
        assert t.render({"flag": True}) == "on"
        assert t.render({"flag": False}) == ""

    def test_not(self):
        t = Template("{% if not flag %}off{% endif %}")
        assert t.render({"flag": False}) == "off"

    def test_equality_with_string_literal(self):
        t = Template("{% if mode == 'fast' %}F{% else %}S{% endif %}")
        assert t.render({"mode": "fast"}) == "F"
        assert t.render({"mode": "slow"}) == "S"

    def test_inequality_with_number(self):
        t = Template("{% if n != 0 %}nz{% endif %}")
        assert t.render({"n": 1}) == "nz"
        assert t.render({"n": 0}) == ""

    def test_elif_chain(self):
        t = Template("{% if n == 1 %}one{% elif n == 2 %}two{% else %}many{% endif %}")
        assert t.render({"n": 1}) == "one"
        assert t.render({"n": 2}) == "two"
        assert t.render({"n": 3}) == "many"

    def test_elif_after_else_rejected(self):
        with pytest.raises(TemplateError, match="elif after else"):
            Template("{% if a %}{% else %}{% elif b %}{% endif %}")

    def test_duplicate_else_rejected(self):
        with pytest.raises(TemplateError, match="duplicate else"):
            Template("{% if a %}{% else %}{% else %}{% endif %}")

    def test_unknown_tag_rejected(self):
        with pytest.raises(TemplateError, match="unknown tag"):
            Template("{% frobnicate %}")

    def test_bad_condition_literal_rejected(self):
        with pytest.raises(TemplateError, match="literal"):
            Template("{% if a == b %}{% endif %}")


class TestVariables:
    def test_reports_top_level_names(self):
        t = Template("${a.b} {% for i in items %}${i}${c}{% endfor %}")
        assert t.variables() == {"a", "items", "c"}

    def test_loop_variable_not_reported(self):
        t = Template("{% for i in items %}${i}{% endfor %}")
        assert "i" not in t.variables()

    def test_condition_names_reported(self):
        t = Template("{% if mode == 'x' %}y{% endif %}")
        assert "mode" in t.variables()


@given(st.text(alphabet=st.characters(blacklist_characters="${}%"), max_size=80))
def test_plain_text_roundtrips(text):
    """Property: text with no template syntax renders to itself."""
    assert Template(text).render({}) == text


@given(st.dictionaries(st.sampled_from(["a", "b", "c"]), st.integers(), min_size=3))
def test_rendering_is_deterministic(context):
    t = Template("${a}-${b}-${c}")
    assert t.render(context) == t.render(context)
