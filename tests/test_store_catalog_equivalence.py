"""Property tests: StoreCatalog answers == in-memory CampaignCatalog answers.

The SQL-pushdown catalog (repro.store) must be observationally identical
to the in-memory catalog (repro.cheetah.catalog) on the §II-C queries:
``best``/``rank`` return the same run ids in the same order (ties broken
by run id in both), the Pareto front contains the same runs, parameter
impact agrees numerically, and the error contracts (KeyError on missing
metrics naming the first offending run, ValueError on empty catalogs)
match message for message.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cheetah.catalog import CampaignCatalog
from repro.cheetah.manifest import CampaignManifest
from repro.cheetah.objectives import Direction, Objective
from repro.store import CampaignStore

PARAM_POOL = {
    "x": st.integers(0, 5),
    "depth": st.integers(1, 4),
    "mode": st.sampled_from(["a", "b", "c"]),
}
METRIC_POOL = ["loss", "cost", "throughput"]

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


@st.composite
def catalogs(draw, min_runs=0, max_runs=12, full_metrics=False):
    """A list of (run_id, parameters, metrics) rows."""
    n = draw(st.integers(min_runs, max_runs))
    rows = []
    for i in range(n):
        parameters = {
            name: draw(values)
            for name, values in PARAM_POOL.items()
            if full_metrics or draw(st.booleans())
        }
        metric_names = (
            METRIC_POOL
            if full_metrics
            else draw(
                st.lists(st.sampled_from(METRIC_POOL), unique=True, max_size=3)
            )
        )
        metrics = {name: draw(finite) for name in metric_names}
        rows.append((f"run-{i:03d}", parameters, metrics))
    return rows


def build_both(rows, campaign="equiv"):
    """The same rows as an in-memory catalog and as a store catalog."""
    mem = CampaignCatalog(campaign)
    store = CampaignStore(":memory:", chunk_size=5)
    store.ensure_campaign(
        CampaignManifest(campaign=campaign, app="app", runs=())
    )
    for run_id, parameters, metrics in rows:
        mem.add(run_id, parameters, metrics)
        store.add_result(
            campaign, run_id, parameters=parameters, metrics=metrics,
            status="done", attempts=1,
        )
    return mem, store.catalog(campaign), store


@settings(deadline=None, max_examples=60)
@given(rows=catalogs(min_runs=1, full_metrics=True), metric=st.sampled_from(METRIC_POOL),
       direction=st.sampled_from(list(Direction)))
def test_best_and_rank_identical(rows, metric, direction):
    mem, sql, store = build_both(rows)
    objective = Objective("o", metric=metric, direction=direction)
    try:
        assert sql.best(objective).run_id == mem.best(objective).run_id
        assert [r.run_id for r in sql.rank(objective)] == [
            r.run_id for r in mem.rank(objective)
        ]
        assert [r.run_id for r in sql.rank(objective, k=3)] == [
            r.run_id for r in mem.rank(objective, k=3)
        ]
    finally:
        store.close()


@settings(deadline=None, max_examples=60)
@given(rows=catalogs(full_metrics=True),
       n_objectives=st.integers(1, 3),
       directions=st.lists(st.sampled_from(list(Direction)), min_size=3, max_size=3))
def test_pareto_front_identical(rows, n_objectives, directions):
    mem, sql, store = build_both(rows)
    objectives = [
        Objective(f"o{i}", metric=METRIC_POOL[i], direction=directions[i])
        for i in range(n_objectives)
    ]
    try:
        assert [r.run_id for r in sql.pareto_front(objectives)] == [
            r.run_id for r in mem.pareto_front(objectives)
        ]
    finally:
        store.close()


@settings(deadline=None, max_examples=60)
@given(rows=catalogs(min_runs=1, full_metrics=True),
       parameter=st.sampled_from(sorted(PARAM_POOL)),
       metric=st.sampled_from(METRIC_POOL))
def test_parameter_impact_agrees(rows, parameter, metric):
    mem, sql, store = build_both(rows)
    try:
        mem_impact = mem.parameter_impact(parameter, metric)
        sql_impact = sql.parameter_impact(parameter, metric)
        assert sql_impact["group_means"].keys() == mem_impact["group_means"].keys()
        for key, mean in mem_impact["group_means"].items():
            assert sql_impact["group_means"][key] == pytest.approx(mean, rel=1e-9, abs=1e-9)
        assert sql_impact["grand_mean"] == pytest.approx(
            mem_impact["grand_mean"], rel=1e-9, abs=1e-9
        )
        if mem_impact["effect"] != float("inf"):
            assert sql_impact["effect"] == pytest.approx(
                mem_impact["effect"], rel=1e-6, abs=1e-9
            )
    finally:
        store.close()


@settings(deadline=None, max_examples=40)
@given(rows=catalogs())
def test_records_and_metric_names_identical(rows):
    mem, sql, store = build_both(rows)
    try:
        assert sql.metric_names() == mem.metric_names()
        assert [
            (r.run_id, r.parameters, r.metrics) for r in sql.records()
        ] == [(r.run_id, r.parameters, r.metrics) for r in mem.records()]
    finally:
        store.close()


@settings(deadline=None, max_examples=40)
@given(rows=catalogs(min_runs=1))
def test_missing_metric_raises_identically(rows):
    """KeyError parity on ``rank``: same exception type and message — the
    first run (in run-id order) missing the metric names itself.  On
    ``best`` the store is strictly *more* validating than the in-memory
    catalog (which skips the metric check entirely for single-run
    catalogs): any missing metric raises, naming the first offender."""
    mem, sql, store = build_both(rows)
    objective = Objective("o", metric="loss")
    missing = [rid for rid, _, metrics in rows if "loss" not in metrics]
    try:
        if not missing:
            assert sql.best(objective).run_id == mem.best(objective).run_id
            return
        with pytest.raises(KeyError) as best_err:
            sql.best(objective)
        assert repr(missing[0]) in str(best_err.value)
        with pytest.raises(KeyError) as mem_err:
            mem.rank(objective)
        with pytest.raises(KeyError) as sql_err:
            sql.rank(objective)
        assert sql_err.value.args == mem_err.value.args
    finally:
        store.close()


def test_empty_catalog_contracts_match():
    mem, sql, store = build_both([])
    objective = Objective("o", metric="loss")
    try:
        with pytest.raises(ValueError, match="catalog is empty"):
            mem.best(objective)
        with pytest.raises(ValueError, match="catalog is empty"):
            sql.best(objective)
        assert mem.rank(objective) == [] == sql.rank(objective)
        assert mem.pareto_front([objective]) == [] == sql.pareto_front([objective])
        with pytest.raises(ValueError, match="need at least one objective"):
            sql.pareto_front([])
    finally:
        store.close()
