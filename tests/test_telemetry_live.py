"""Tests for the live telemetry plane (repro.observability.live).

Covers the four moving parts in isolation — sampler folding, HTTP
exposition, JSON-lines logging, worker resource profiling — plus the
``repro top`` renderer, and then the acceptance scenario end to end: a
``CampaignService(serve_telemetry=True)`` driving real campaigns while
``/metrics`` and ``/status`` are scraped over HTTP, with one trace id
per submission carried from the ``service.submitted`` instant through
the drive pipeline into the worker-echoed ``task`` END events.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.observability import EventBus, new_trace_id
from repro.observability.live import (
    PROMETHEUS_CONTENT_TYPE,
    STATUS_SCHEMA,
    JsonLogSubscriber,
    TelemetrySampler,
    TelemetryServer,
    WorkerResourceProfiler,
    render_top,
    sample_process,
    watch,
)
from repro.savanna.service import CampaignService


def app(params):
    time.sleep(params.get("sleep", 0.005))
    return params["x"] + 1


def make_manifest(name, n=4, sleep=0.005):
    camp = Campaign(name, app=AppSpec("telemetry-app"))
    sg = camp.sweep_group("g", nodes=2, walltime=600.0)
    sg.add(Sweep([SweepParameter("x", range(n))]))
    manifest = camp.to_manifest()
    for run in manifest.runs:
        run.parameters["sleep"] = sleep
    return manifest


def drive_lifecycle(bus, submission="sub-0000", tenant="lab", backend="bk",
                    tasks=2, outcome="done"):
    """Emit one submission's full lifecycle onto ``bus``."""
    bus.emit("service.submitted", submission=submission, tenant=tenant,
             backend=backend, campaign="c", priority=0)
    bus.emit("service.started", submission=submission, tenant=tenant,
             queued_for=0.25)
    for i in range(tasks):
        bus.emit("task", phase="end", submission=submission, tenant=tenant,
                 backend=backend, task=f"r{i}", outcome="done")
    bus.emit("service.finished", submission=submission, tenant=tenant,
             outcome=outcome, elapsed=1.25)


class TestTelemetrySampler:
    def test_folds_lifecycle_into_per_tenant_aggregates(self):
        bus = EventBus()
        sampler = TelemetrySampler(capacity=2).attach(bus)
        drive_lifecycle(bus, tenant="lab-a", backend="local-threads")
        lab = sampler.status()["tenants"]["lab-a"]
        assert lab["submitted"] == lab["started"] == lab["finished"] == 1
        assert lab["queued"] == lab["active"] == 0
        assert lab["tasks_done"] == 2
        assert lab["queue_wait"]["p50"] == pytest.approx(0.25)
        assert lab["latency"]["p50"] == pytest.approx(1.25)

    def test_backend_scope_fills_from_route_map(self):
        # Only service.submitted names the backend; later lifecycle
        # instants resolve it through the sampler's route map.
        bus = EventBus()
        sampler = TelemetrySampler().attach(bus)
        drive_lifecycle(bus, backend="local-processes")
        be = sampler.status()["backends"]["local-processes"]
        assert be["finished"] == 1 and be["tasks_done"] == 2

    def test_cancelled_splits_queued_and_running(self):
        bus = EventBus()
        sampler = TelemetrySampler().attach(bus)
        bus.emit("service.submitted", submission="s0", tenant="t", backend="b")
        bus.emit("service.cancelled", submission="s0", tenant="t",
                 **{"while": "queued"})
        bus.emit("service.submitted", submission="s1", tenant="t", backend="b")
        bus.emit("service.started", submission="s1", tenant="t", queued_for=0.0)
        bus.emit("service.cancelled", submission="s1", tenant="t",
                 **{"while": "running"})
        t = sampler.status()["tenants"]["t"]
        assert t["cancelled_queued"] == 1 and t["cancelled_running"] == 1
        assert t["cancelled"] == 2
        assert t["queued"] == 0 and t["active"] == 0

    def test_saturation_and_peak(self):
        bus = EventBus()
        sampler = TelemetrySampler(capacity=2).attach(bus)
        for i in range(2):
            bus.emit("service.submitted", submission=f"s{i}", tenant="t", backend="b")
            bus.emit("service.started", submission=f"s{i}", tenant="t", queued_for=0.0)
        bus.emit("service.saturated", queued=2, limit=2, tenant="t")
        status = sampler.status()["service"]
        assert status["saturation"] == pytest.approx(1.0)
        assert status["running_peak"] == 2
        assert status["saturated_total"] == 1

    def test_tenant_status_and_unknown_tenant(self):
        bus = EventBus()
        sampler = TelemetrySampler().attach(bus)
        drive_lifecycle(bus, tenant="lab-a")
        assert sampler.tenant_status("lab-a")["finished"] == 1
        assert sampler.tenant_status("nope") is None

    def test_prometheus_exposition_shape(self):
        bus = EventBus()
        sampler = TelemetrySampler(capacity=4).attach(bus)
        drive_lifecycle(bus, tenant='la"b\n', backend="bk")  # hostile label
        text = sampler.prometheus()
        assert text.endswith("\n")
        # counters end in _total, label values are escaped
        assert 'repro_service_finished_total{tenant="la\\"b\\n"} 1' in text
        assert 'repro_service_latency_seconds{tenant="la\\"b\\n",quantile="0.5"}' in text
        assert "repro_service_latency_seconds_count" in text
        # every non-comment line is "name{labels} value" parseable
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part.startswith("repro_")

    def test_status_document_is_json_serializable(self):
        bus = EventBus()
        sampler = TelemetrySampler().attach(bus)
        drive_lifecycle(bus)
        doc = json.loads(json.dumps(sampler.status()))
        assert doc["schema"] == STATUS_SCHEMA

    def test_detach_stops_folding(self):
        bus = EventBus()
        sampler = TelemetrySampler().attach(bus)
        drive_lifecycle(bus)
        sampler.detach()
        drive_lifecycle(bus, submission="sub-0001")
        assert sampler.status()["tenants"]["lab"]["submitted"] == 1


class TestTelemetryServer:
    def test_serves_metrics_status_and_tenant_routes(self):
        bus = EventBus()
        sampler = TelemetrySampler().attach(bus)
        drive_lifecycle(bus, tenant="lab-a")
        with TelemetryServer(sampler) as server:
            metrics = urllib.request.urlopen(server.address + "/metrics")
            assert metrics.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            assert b"repro_service_finished_total" in metrics.read()

            status = json.loads(
                urllib.request.urlopen(server.address + "/status").read()
            )
            assert status["schema"] == STATUS_SCHEMA
            assert status["tenants"]["lab-a"]["finished"] == 1

            tenant = json.loads(
                urllib.request.urlopen(server.address + "/status/lab-a").read()
            )
            assert tenant["finished"] == 1

    def test_unknown_tenant_and_route_404(self):
        sampler = TelemetrySampler()
        with TelemetryServer(sampler) as server:
            for path in ("/status/nope", "/bogus"):
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(server.address + path)
                assert err.value.code == 404

    def test_stop_is_idempotent_and_port_requires_running(self):
        server = TelemetryServer(TelemetrySampler())
        with pytest.raises(RuntimeError):
            server.port
        server.start().start()
        assert server.running and server.port > 0
        server.stop()
        server.stop()
        assert not server.running


class TestJsonLogSubscriber:
    def test_one_json_line_per_event_with_promoted_fields(self):
        bus = EventBus()
        stream = io.StringIO()
        log = JsonLogSubscriber(stream=stream).attach(bus)
        bus.emit("service.submitted", submission="s0", tenant="lab",
                 backend="bk", trace_id="t" * 16, priority=3)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and log.lines == 1
        record = json.loads(lines[0])
        assert record["event"] == "service.submitted"
        assert record["submission"] == "s0"
        assert record["tenant"] == "lab"
        assert record["backend"] == "bk"
        assert record["trace_id"] == "t" * 16
        assert record["fields"] == {"priority": 3}  # the rest, verbatim

    def test_prefix_and_exact_filters(self):
        bus = EventBus()
        stream = io.StringIO()
        JsonLogSubscriber(
            stream=stream, events=("service.*", "worker.sample")
        ).attach(bus)
        bus.emit("service.started", submission="s0")
        bus.emit("task", phase="end", outcome="done")  # filtered out
        bus.emit("worker.sample", worker="w0", pid=1)
        names = [json.loads(l)["event"] for l in stream.getvalue().splitlines()]
        assert names == ["service.started", "worker.sample"]

    def test_batch_delivery_writes_each_event(self):
        bus = EventBus()
        stream = io.StringIO()
        JsonLogSubscriber(stream=stream).attach(bus)
        bus.publish_batch([
            ("service.submitted", None, None, {"submission": "s0"}),
            ("service.started", None, None, {"submission": "s0"}),
        ])
        assert len(stream.getvalue().splitlines()) == 2

    def test_unserializable_fields_fall_back_to_repr(self):
        bus = EventBus()
        stream = io.StringIO()
        JsonLogSubscriber(stream=stream).attach(bus)
        bus.emit("service.finished", submission="s0", error=ValueError("boom"))
        record = json.loads(stream.getvalue())
        assert "boom" in record["fields"]["error"]


class TestWorkerResourceProfiler:
    def test_sample_process_reads_own_resources(self):
        reading = sample_process(os.getpid())
        assert reading is not None
        assert reading["cpu_seconds"] >= 0.0
        assert reading["rss_bytes"] > 0

    def test_sample_process_missing_pid_is_none(self):
        assert sample_process(2**22 + 12345) is None

    def test_sample_once_emits_and_computes_utilization(self):
        events = []

        def emit(name, **fields):
            events.append((name, fields))

        profiler = WorkerResourceProfiler(
            emit, lambda: {"self": os.getpid()}, interval=0.05, trace_id="abc"
        )
        assert profiler.sample_once() == 1
        # burn a little CPU so the second sample sees a delta
        deadline = time.perf_counter() + 0.05
        while time.perf_counter() < deadline:
            sum(i * i for i in range(500))
        assert profiler.sample_once() == 1
        first, second = events[0][1], events[1][1]
        assert events[0][0] == "worker.sample"
        assert first["worker"] == "self" and first["trace_id"] == "abc"
        assert first["cpu_pct"] is None  # no delta yet
        assert second["cpu_pct"] is not None and second["cpu_pct"] >= 0.0
        assert profiler.samples == 2

    def test_thread_lifecycle_takes_final_sample(self):
        events = []
        profiler = WorkerResourceProfiler(
            lambda name, **f: events.append(name),
            lambda: {"self": os.getpid()},
            interval=30.0,  # never fires on its own: only stop() samples
        )
        profiler.start()
        profiler.stop()
        assert events == ["worker.sample"]

    def test_dead_pid_map_is_skipped_not_raised(self):
        profiler = WorkerResourceProfiler(
            lambda name, **f: None, lambda: 1 / 0, interval=0.05
        )
        assert profiler.sample_once() == 0

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            WorkerResourceProfiler(lambda n, **f: None, dict, interval=0.0)


class TestTopRenderer:
    def _sampler(self):
        bus = EventBus()
        sampler = TelemetrySampler(capacity=2).attach(bus)
        drive_lifecycle(bus, tenant="lab-a", backend="local-threads")
        bus.emit("worker.sample", worker="w0", pid=1, cpu_seconds=1.0,
                 cpu_pct=42.0, rss_bytes=8_000_000)
        return sampler

    def test_render_top_contains_all_sections(self):
        screen = render_top(self._sampler().status())
        assert "repro top" in screen
        assert "lab-a" in screen
        assert "local-threads" in screen
        assert "w0" in screen and "42%" in screen

    def test_watch_in_process_and_over_http(self):
        sampler = self._sampler()
        out = io.StringIO()
        assert watch(sampler, iterations=1, out=out, clear=False) == 1
        assert "lab-a" in out.getvalue()
        with TelemetryServer(sampler) as server:
            out = io.StringIO()
            assert watch(server.address, iterations=1, out=out, clear=False) == 1
            assert "lab-a" in out.getvalue()

    def test_watch_rejects_unusable_source(self):
        with pytest.raises(TypeError):
            watch(object(), iterations=1, out=io.StringIO())

    def test_cli_top_once(self, capsys):
        from repro.observability.__main__ import main

        with TelemetryServer(self._sampler()) as server:
            assert main(["top", server.address, "--once"]) == 0
        assert "lab-a" in capsys.readouterr().out


class TestServiceTelemetryEndToEnd:
    """The acceptance scenario: serve_telemetry=True, scraped mid-flight."""

    def test_service_serves_scrapeable_telemetry_with_matching_trace_ids(self):
        events = []

        async def scenario():
            service = CampaignService(max_workers=2, serve_telemetry=True)
            service.bus.subscribe(events.append)
            async with service:
                address = service.telemetry_server.address
                a = service.submit(
                    make_manifest("tele-a"), backend="local-threads",
                    app_fn=app, tenant="lab-a", profile_interval=0.02,
                )
                b = service.submit(
                    make_manifest("tele-b"), backend="local-threads",
                    app_fn=app, tenant="lab-b",
                )
                await a.wait()
                await b.wait()
                metrics = urllib.request.urlopen(address + "/metrics").read().decode()
                status = json.loads(
                    urllib.request.urlopen(address + "/status").read()
                )
                return a, b, metrics, status

        a, b, metrics, status = asyncio.run(scenario())

        # HTTP views agree with the final outcomes
        assert a.error is None and b.error is None, (a.error, b.error)
        assert status["tenants"]["lab-a"]["finished"] == 1
        assert status["tenants"]["lab-b"]["finished"] == 1
        assert status["tenants"]["lab-a"]["tasks_done"] == len(a.result["g"].completed)
        assert 'repro_service_finished_total{tenant="lab-a"} 1' in metrics
        assert 'repro_service_finished_total{backend="local-threads"} 2' in metrics
        assert status["workers"], "profiler samples missing from /status"

        # one trace id per submission, carried end to end
        assert a.trace_id != b.trace_id
        for handle in (a, b):
            sub_events = [
                e for e in events if e.fields.get("submission") == handle.id
            ]
            names = {e.name for e in sub_events}
            assert {"service.submitted", "service.started",
                    "service.finished", "group", "task"} <= names
            assert all(
                e.fields.get("trace_id") == handle.trace_id for e in sub_events
            )
            # task END carries the worker-echoed id: in-worker propagation
            ends = [
                e for e in sub_events
                if e.name == "task" and e.phase == "end"
            ]
            assert len(ends) == 4
            assert all(e.fields["trace_id"] == handle.trace_id for e in ends)

        # log adapter: the same trace id correlates service + task lines
        stream = io.StringIO()
        log = JsonLogSubscriber(stream=stream)
        for event in events:
            log(event)
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        a_lines = [l for l in lines if l.get("trace_id") == a.trace_id]
        assert {"service.submitted", "service.finished", "task"} <= {
            l["event"] for l in a_lines
        }

    def test_telemetry_off_by_default(self):
        service = CampaignService()
        assert service.telemetry is None
        assert service.telemetry_server is None

    def test_caller_supplied_trace_id_wins(self):
        async def scenario():
            service = CampaignService(max_workers=1)
            async with service:
                handle = service.submit(
                    make_manifest("tele-c", n=1), backend="local-threads",
                    app_fn=app, trace_id="feedfacefeedface",
                )
                await handle.wait()
                return handle

        handle = asyncio.run(scenario())
        assert handle.trace_id == "feedfacefeedface"

    def test_new_trace_id_shape(self):
        first, second = new_trace_id(), new_trace_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)  # hex
