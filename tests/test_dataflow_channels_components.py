"""Tests for dataflow channels and basic components."""

import pytest

from repro.dataflow.channels import Channel, ChannelClosed, DataItem, Punctuation
from repro.dataflow.components import (
    Component,
    ControlSource,
    PortError,
    Sink,
    Source,
    Transform,
)
from repro.dataflow.graph import DataflowGraph


class TestChannel:
    def test_fifo_order(self):
        ch = Channel("c")
        ch.push(DataItem(payload=1))
        ch.push(DataItem(payload=2))
        assert ch.pop().payload == 1
        assert ch.pop().payload == 2

    def test_pop_empty_returns_none(self):
        assert Channel("c").pop() is None

    def test_capacity_blocks_data(self):
        ch = Channel("c", capacity=1)
        ch.push(DataItem(payload=1))
        assert not ch.can_push()
        with pytest.raises(RuntimeError, match="full"):
            ch.push(DataItem(payload=2))

    def test_punctuation_bypasses_capacity(self):
        ch = Channel("c", capacity=1)
        ch.push(DataItem(payload=1))
        ch.push(Punctuation("group-boundary"))  # must not raise
        assert len(ch) == 2

    def test_close_appends_eos(self):
        ch = Channel("c")
        ch.close()
        entry = ch.pop()
        assert isinstance(entry, Punctuation) and entry.kind == "eos"
        assert ch.drained

    def test_push_after_close_rejected(self):
        ch = Channel("c")
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.push(DataItem(payload=1))

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            Channel("c").push("raw")

    def test_seq_numbers_increase(self):
        a, b = DataItem(payload=1), DataItem(payload=2)
        assert b.seq > a.seq


class TestComponentBinding:
    def test_unknown_port_rejected(self):
        c = Component("c", inputs=("in",), outputs=("out",))
        with pytest.raises(PortError, match="no input port"):
            c.bind_input("nope", Channel("x"))
        with pytest.raises(PortError, match="no output port"):
            c.bind_output("nope", Channel("x"))

    def test_double_bind_rejected(self):
        c = Component("c", inputs=("in",))
        c.bind_input("in", Channel("x"))
        with pytest.raises(PortError, match="already bound"):
            c.bind_input("in", Channel("y"))

    def test_overlapping_port_names_rejected(self):
        with pytest.raises(PortError, match="both input and output"):
            Component("c", inputs=("p",), outputs=("p",))

    def test_fully_bound(self):
        c = Component("c", inputs=("in",), outputs=("out",))
        assert not c.fully_bound()
        c.bind_input("in", Channel("x"))
        c.bind_output("out", Channel("y"))
        assert c.fully_bound()


def run_pipeline(*components, connections):
    g = DataflowGraph("t")
    for c in components:
        g.add(c)
    for src, sp, dst, dp in connections:
        g.connect(src, sp, dst, dp)
    metrics = g.run()
    return g, metrics


class TestSourceSinkTransform:
    def test_source_to_sink(self):
        src = Source("s", range(5))
        sink = Sink("k")
        _g, metrics = run_pipeline(src, sink, connections=[(src, "out", sink, "in")])
        assert sink.payloads() == [0, 1, 2, 3, 4]
        assert metrics["per_component"]["s"]["out"] == 5

    def test_source_timestamps_use_clock(self):
        src = Source("s", range(3), clock=lambda i: i * 2.0)
        sink = Sink("k")
        run_pipeline(src, sink, connections=[(src, "out", sink, "in")])
        assert [item.timestamp for item in sink.received] == [0.0, 2.0, 4.0]

    def test_transform_applies_function(self):
        src = Source("s", range(4))
        t = Transform("t", lambda v: v * 10)
        sink = Sink("k")
        run_pipeline(
            src, t, sink,
            connections=[(src, "out", t, "in"), (t, "out", sink, "in")],
        )
        assert sink.payloads() == [0, 10, 20, 30]

    def test_transform_preserves_seq_and_timestamp(self):
        src = Source("s", range(2), clock=lambda i: 5.0 + i)
        t = Transform("t", lambda v: v)
        sink = Sink("k")
        run_pipeline(
            src, t, sink,
            connections=[(src, "out", t, "in"), (t, "out", sink, "in")],
        )
        assert [i.timestamp for i in sink.received] == [5.0, 6.0]

    def test_sink_collects_non_eos_punctuation(self):
        src = Source("s", range(1))
        sink = Sink("k")
        g = DataflowGraph("t")
        g.add(src), g.add(sink)
        ch = g.connect(src, "out", sink, "in")
        ch.push(Punctuation("group-boundary"))
        g.run()
        assert [p.kind for p in sink.punctuation] == ["group-boundary"]


class TestControlSource:
    def test_emits_script_in_order(self):
        marks = [(0, Punctuation("a")), (0, Punctuation("b"))]
        ctrl = ControlSource("c", marks)
        sink = Sink("k")
        run_pipeline(ctrl, sink, connections=[(ctrl, "out", sink, "in")])
        assert [p.kind for p in sink.punctuation] == ["a", "b"]

    def test_watch_defers_until_watermark(self):
        class Watch:
            items_seen = 0

        watch = Watch()
        ctrl = ControlSource("c", [(5, Punctuation("late"))], watch=watch)
        ctrl.bind_output("out", Channel("x"))
        assert ctrl.step() is False  # 0 < 5
        watch.items_seen = 5
        assert ctrl.step() is True

    def test_bad_script_entry_rejected(self):
        with pytest.raises(TypeError, match="script entries"):
            ControlSource("c", ["not-a-tuple"])
