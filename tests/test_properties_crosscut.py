"""Cross-cutting property tests: invariants that span modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_cluster


@settings(deadline=None, max_examples=40)
@given(
    n_items=st.integers(0, 200),
    policy_kind=st.sampled_from(["forward", "sample", "window", "time"]),
    knob=st.integers(1, 12),
)
def test_dataflow_conservation(n_items, policy_kind, knob):
    """Property: the sink receives exactly what the virtual queue emitted,
    and the graph always terminates."""
    from repro.dataflow import (
        DataflowGraph,
        DataScheduler,
        ForwardAll,
        Punctuation,
        SampleEveryK,
        Sink,
        SlidingWindowCount,
        SlidingWindowTime,
        Source,
    )
    from repro.dataflow.components import ControlSource

    policy = {
        "forward": lambda: ForwardAll(),
        "sample": lambda: SampleEveryK(knob),
        "window": lambda: SlidingWindowCount(knob),
        "time": lambda: SlidingWindowTime(float(knob)),
    }[policy_kind]()

    g = DataflowGraph("prop")
    src = g.add(Source("s", ({"v": i} for i in range(n_items))))
    # Control source added before the scheduler: the install must be
    # processed before the first data item (step order = insertion order).
    ctrl = g.add(
        ControlSource("c", [(0, Punctuation("install-policy", ("out", policy)))])
    )
    sched = g.add(DataScheduler("d", subscribers=("out",)))
    sink = g.add(Sink("k"))
    g.connect(src, "out", sched, "in")
    g.connect(ctrl, "out", sched, "control")
    g.connect(sched, "out", sink, "in", capacity=8)  # small: exercise backlog
    g.run()

    assert sched.queue_stats()["out"]["emitted"] == len(sink.received)
    assert sched.items_seen == n_items
    if policy_kind == "forward":
        assert len(sink.received) == n_items
    if policy_kind == "sample":
        assert len(sink.received) == n_items // knob


@settings(deadline=None, max_examples=30)
@given(
    durations=st.lists(st.floats(1.0, 400.0), min_size=1, max_size=25),
    nodes=st.integers(1, 6),
    walltime=st.floats(50.0, 1000.0),
    allocations=st.integers(1, 3),
)
def test_executor_returns_all_nodes(durations, nodes, walltime, allocations):
    """Property: after any campaign, every node is back in the free pool
    and no node has an open busy interval."""
    from repro.cluster.job import Task
    from repro.savanna import PilotExecutor

    cluster = make_cluster(nodes=nodes)
    tasks = [Task(name=f"t{i}", duration=d) for i, d in enumerate(durations)]
    PilotExecutor(cluster).run(
        tasks, nodes=nodes, walltime=walltime, max_allocations=allocations
    )
    assert cluster.pool.free_count == nodes
    for node in cluster.pool.nodes:
        assert not node.busy
        for start, end in node.busy_intervals:
            assert end >= start


@settings(deadline=None, max_examples=30)
@given(
    steps=st.integers(1, 40),
    budget=st.floats(0.01, 0.9),
    seed=st.integers(0, 50),
)
def test_checkpoint_accounting_identity(steps, budget, seed):
    """Property: middleware accounting is internally consistent and the
    report matches the per-step log exactly."""
    from repro.apps.simulation.checkpoint import OverheadBudgetPolicy
    from repro.apps.simulation.run import CheckpointedRun, RunConfig

    config = RunConfig(timesteps=steps, grid_n=16)
    report = CheckpointedRun(config, OverheadBudgetPolicy(budget), seed=seed).execute()
    assert report.compute_seconds == pytest.approx(
        sum(s.compute_seconds for s in report.steps)
    )
    assert report.io_seconds == pytest.approx(sum(s.io_seconds for s in report.steps))
    assert report.checkpoints_written == sum(s.wrote_checkpoint for s in report.steps)
    assert 0 <= report.overhead_fraction < 1
    assert report.checkpoint_timesteps == sorted(report.checkpoint_timesteps)


@settings(deadline=None, max_examples=50)
@given(data=st.data())
def test_gauge_profile_dict_roundtrip(data):
    """Property: as_dict -> from_dict is the identity for any profile."""
    from repro.gauges.levels import TIER_TYPES, Gauge
    from repro.gauges.model import GaugeProfile

    kwargs = {}
    for gauge in Gauge:
        tier = data.draw(st.sampled_from(list(TIER_TYPES[gauge])))
        kwargs[GaugeProfile._FIELD_BY_GAUGE[gauge]] = tier
    profile = GaugeProfile(**kwargs)
    assert GaugeProfile.from_dict(profile.as_dict()) == profile


@settings(deadline=None, max_examples=40)
@given(
    who=st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=12
    ),
    count=st.integers(1, 500),
)
def test_generated_file_staleness_property(who, count):
    """Property: freshly generated files are never stale; generating from a
    different model always marks them stale."""
    from repro.skel.generator import Generator, TemplateLibrary, is_stale
    from repro.skel.model import ModelField, ModelSchema, SkelModel

    lib = TemplateLibrary()
    lib.add("t", "out.sh", "run ${who} x${count}\n")
    schema = ModelSchema("m", (ModelField("who"), ModelField("count", "int")))
    model = SkelModel(schema, {"who": who, "count": count})
    generated = Generator(lib).generate(model)[0]
    assert not is_stale(generated.content, model)
    changed = model.updated(count=count + 1)
    assert is_stale(generated.content, changed)


@settings(deadline=None, max_examples=30)
@given(
    values=st.lists(st.integers(-100, 100), min_size=1, max_size=15, unique=True),
    duration=st.floats(1.0, 100.0),
)
def test_manifest_to_execution_name_stability(values, duration):
    """Property: task names survive the manifest round trip and the
    executor, so status recording by name is always safe."""
    from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
    from repro.cheetah.manifest import manifest_from_json, manifest_to_json
    from repro.savanna import PilotExecutor, tasks_from_manifest

    camp = Campaign("names", app=AppSpec("a"))
    camp.sweep_group("g", nodes=2, walltime=10_000.0).add(
        Sweep([SweepParameter("v", values)])
    )
    manifest = manifest_from_json(manifest_to_json(camp.to_manifest()))
    tasks = tasks_from_manifest(manifest, lambda p: duration)
    result = PilotExecutor(make_cluster(nodes=2)).run(
        tasks, nodes=2, walltime=10_000.0
    )
    assert {t.name for t in result.tasks} == {r.run_id for r in manifest.runs}
    assert result.all_done
