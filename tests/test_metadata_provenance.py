"""Tests for provenance records, campaign context, and export policy."""

import pytest

from repro.metadata.provenance import (
    CampaignContext,
    ExportClass,
    ExportPolicy,
    ProvenanceRecord,
    ProvenanceStore,
)


def record(component="sim", campaign=None, outcome="success", export=ExportClass.INTERNAL, env=None):
    return ProvenanceRecord(
        component=component,
        start_time=0.0,
        end_time=10.0,
        campaign=campaign,
        outcome=outcome,
        export_class=export,
        environment=env or {},
    )


class TestRecord:
    def test_elapsed(self):
        assert record().elapsed == 10.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            ProvenanceRecord(component="x", start_time=5.0, end_time=1.0)

    def test_unique_ids(self):
        assert record().record_id != record().record_id


class TestStore:
    def test_add_and_query_by_component(self):
        store = ProvenanceStore()
        store.add(record(component="a"))
        store.add(record(component="b"))
        assert len(store.query(component="a")) == 1
        assert len(store) == 2

    def test_query_by_outcome(self):
        store = ProvenanceStore()
        store.add(record(outcome="success"))
        store.add(record(outcome="failure"))
        assert len(store.query(outcome="failure")) == 1

    def test_campaign_must_be_registered(self):
        store = ProvenanceStore()
        with pytest.raises(ValueError, match="unregistered campaign"):
            store.add(record(campaign="nope"))

    def test_campaign_registration_and_lookup(self):
        store = ProvenanceStore()
        ctx = CampaignContext("study", "minimize runtime", ("x",))
        store.register_campaign(ctx)
        assert store.campaign("study") is ctx
        assert store.campaigns == (ctx,)

    def test_duplicate_campaign_rejected(self):
        store = ProvenanceStore()
        store.register_campaign(CampaignContext("s", "o"))
        with pytest.raises(ValueError, match="already registered"):
            store.register_campaign(CampaignContext("s", "o2"))

    def test_summarize_campaign(self):
        store = ProvenanceStore()
        store.register_campaign(CampaignContext("s", "o"))
        store.add(record(campaign="s"))
        store.add(record(campaign="s", outcome="failure"))
        summary = store.summarize_campaign("s")
        assert summary["runs"] == 2
        assert summary["outcomes"] == {"success": 1, "failure": 1}
        assert summary["total_elapsed"] == 20.0


class TestExport:
    def test_default_policy_admits_only_public(self):
        store = ProvenanceStore()
        store.add(record(export=ExportClass.PRIVATE))
        store.add(record(export=ExportClass.INTERNAL))
        store.add(record(export=ExportClass.PUBLIC))
        exported = store.export()
        assert len(exported) == 1
        assert exported[0].export_class is ExportClass.PUBLIC

    def test_sanitize_redacts_environment_keys(self):
        policy = ExportPolicy()
        r = record(export=ExportClass.PUBLIC, env={"USER": "alice", "OMP_NUM_THREADS": "4"})
        clean = policy.sanitize(r)
        assert "USER" not in clean.environment
        assert clean.environment["OMP_NUM_THREADS"] == "4"

    def test_custom_include_set(self):
        policy = ExportPolicy(include=frozenset({ExportClass.PUBLIC, ExportClass.INTERNAL}))
        store = ProvenanceStore()
        store.add(record(export=ExportClass.INTERNAL))
        assert len(store.export(policy)) == 1

    def test_sanitize_preserves_payload(self):
        r = record(export=ExportClass.PUBLIC)
        clean = ExportPolicy().sanitize(r)
        assert clean.component == r.component
        assert clean.elapsed == r.elapsed
