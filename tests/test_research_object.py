"""Tests for research-object export/load and provenance serialization."""

import json

from repro.cheetah import AppSpec, Campaign, CampaignCatalog, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, RunStatus
from repro.metadata.provenance import (
    ExportClass,
    ExportPolicy,
    ProvenanceRecord,
    ProvenanceStore,
)
from repro.research import export_research_object, load_research_object


def build_study(tmp_path):
    camp = Campaign("study", app=AppSpec("app"), objective="test objective")
    sg = camp.sweep_group("g", nodes=2, walltime=60.0)
    sg.add(Sweep([SweepParameter("x", [1, 2, 3])]))
    manifest = camp.to_manifest()
    directory = CampaignDirectory(tmp_path / "campaign", manifest)
    directory.create()
    directory.update_status(
        {"g/run-0000": RunStatus.DONE, "g/run-0001": RunStatus.DONE}
    )
    store = ProvenanceStore()
    store.register_campaign(camp.context())
    for i, export in enumerate(
        (ExportClass.PUBLIC, ExportClass.PUBLIC, ExportClass.PRIVATE)
    ):
        store.add(
            ProvenanceRecord(
                component=f"g/run-{i:04d}",
                start_time=0.0,
                end_time=10.0 + i,
                campaign="study",
                export_class=export,
                environment={"USER": "alice", "THREADS": "4"},
                parameters={"x": i + 1},
            )
        )
    catalog = CampaignCatalog("study")
    for i in range(3):
        catalog.add(f"g/run-{i:04d}", {"x": i + 1}, {"runtime": 10.0 + i})
    return directory, store, catalog


class TestProvenanceSerialization:
    def test_dict_roundtrip(self):
        record = ProvenanceRecord(
            component="c",
            start_time=1.0,
            end_time=2.0,
            parameters={"x": 1},
            export_class=ExportClass.PUBLIC,
        )
        again = ProvenanceRecord.from_dict(record.to_dict())
        assert again.component == record.component
        assert again.parameters == record.parameters
        assert again.export_class is ExportClass.PUBLIC

    def test_dict_is_json_safe(self):
        record = ProvenanceRecord(component="c", start_time=0.0, end_time=1.0)
        json.dumps(record.to_dict())


class TestExport:
    def test_bundle_contents(self, tmp_path):
        directory, store, catalog = build_study(tmp_path)
        dest = export_research_object(tmp_path / "object", directory, store, catalog)
        for name in ("OBJECT.md", "manifest.json", "status.json",
                     "provenance.json", "catalog.json"):
            assert (dest / name).exists(), name

    def test_export_policy_filters_and_redacts(self, tmp_path):
        directory, store, catalog = build_study(tmp_path)
        dest = export_research_object(tmp_path / "object", directory, store, catalog)
        records = json.loads((dest / "provenance.json").read_text())
        assert len(records) == 2  # the PRIVATE record stayed home
        for r in records:
            assert "USER" not in r["environment"]  # redacted
            assert r["environment"]["THREADS"] == "4"

    def test_object_md_summarizes(self, tmp_path):
        directory, store, catalog = build_study(tmp_path)
        dest = export_research_object(tmp_path / "object", directory, store, catalog)
        text = (dest / "OBJECT.md").read_text()
        assert "Research object: study" in text
        assert "3 runs" in text or "runs: 3" in text
        assert "2 exported records" in text
        assert "1 withheld" in text

    def test_minimal_object_without_store_or_catalog(self, tmp_path):
        directory, _store, _catalog = build_study(tmp_path)
        dest = export_research_object(tmp_path / "min", directory)
        assert not (dest / "provenance.json").exists()
        assert not (dest / "catalog.json").exists()
        assert (dest / "manifest.json").exists()

    def test_custom_policy_respected(self, tmp_path):
        directory, store, catalog = build_study(tmp_path)
        policy = ExportPolicy(include=frozenset({ExportClass.PUBLIC, ExportClass.PRIVATE}))
        dest = export_research_object(
            tmp_path / "object", directory, store, catalog, policy=policy
        )
        records = json.loads((dest / "provenance.json").read_text())
        assert len(records) == 3


class TestLoad:
    def test_roundtrip(self, tmp_path):
        directory, store, catalog = build_study(tmp_path)
        dest = export_research_object(tmp_path / "object", directory, store, catalog)
        loaded = load_research_object(dest)
        assert loaded["manifest"] == directory.manifest
        assert loaded["status"]["g/run-0000"] == "done"
        assert len(loaded["provenance"]) == 2
        assert len(loaded["catalog"]) == 3

    def test_loaded_manifest_is_executable(self, tmp_path):
        """The reuse promise: a stranger re-runs the pending set from the
        bundle alone."""
        from conftest import make_cluster

        from repro.savanna import PilotExecutor, tasks_from_manifest

        directory, store, catalog = build_study(tmp_path)
        dest = export_research_object(tmp_path / "object", directory, store, catalog)
        loaded = load_research_object(dest)
        pending_ids = {
            run_id for run_id, s in loaded["status"].items() if s != "done"
        }
        runs = [r for r in loaded["manifest"].runs if r.run_id in pending_ids]
        assert len(runs) == 1
        from repro.cheetah.manifest import CampaignManifest

        sub = CampaignManifest(
            campaign=loaded["manifest"].campaign,
            app=loaded["manifest"].app,
            runs=tuple(runs),
            groups=loaded["manifest"].groups,
        )
        tasks = tasks_from_manifest(sub, lambda p: 10.0)
        result = PilotExecutor(make_cluster(nodes=2)).run(tasks, nodes=2, walltime=60.0)
        assert result.all_done
