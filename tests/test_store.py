"""Tests for repro.store: engines, ingestion, catalog, migration, CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cheetah import AppSpec, Campaign, Objective, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, RunStatus
from repro.store import (
    CampaignStore,
    SqliteEngine,
    StoreError,
    engine_for,
    export_directory,
    ingest_directory,
    metrics_from_value,
    register_engine,
    registered_engines,
)


def make_manifest(n=4, campaign="store-test"):
    camp = Campaign(campaign, app=AppSpec("app"), objective="minimize loss")
    sg = camp.sweep_group("g", nodes=1, walltime=60.0)
    sg.add(Sweep([SweepParameter("x", range(n)), SweepParameter("mode", ["a", "b"])]))
    return camp.to_manifest()


def fill(store, manifest, loss=lambda i: float(i % 5) + 0.5):
    store.ensure_campaign(manifest)
    for i, run in enumerate(manifest.runs):
        store.add_result(
            manifest.campaign,
            run.run_id,
            value={"loss": loss(i), "cost": float(len(manifest.runs) - i)},
            elapsed=0.01 * i,
            attempts=1,
            seed=i,
        )
    store.set_statuses(
        manifest.campaign, {r.run_id: RunStatus.DONE for r in manifest.runs}
    )
    return store


class TestEngineRegistry:
    def test_sqlite_registered_by_default(self):
        assert "sqlite" in registered_engines()

    def test_engine_for_path_and_url(self, tmp_path):
        by_path = engine_for(tmp_path / "a.sqlite")
        by_url = engine_for(f"sqlite://{tmp_path / 'b.sqlite'}")
        assert isinstance(by_path, SqliteEngine)
        assert isinstance(by_url, SqliteEngine)
        assert str(tmp_path) in by_url.describe()

    def test_engine_passthrough(self):
        engine = SqliteEngine(":memory:")
        assert engine_for(engine) is engine

    def test_duplicate_scheme_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine("sqlite", lambda location: SqliteEngine(location))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="no storage engine registered"):
            engine_for("voldb://nope")


class TestIngestion:
    def test_ensure_campaign_is_idempotent(self):
        manifest = make_manifest()
        with CampaignStore(":memory:") as store:
            cid1 = store.ensure_campaign(manifest)
            cid2 = store.ensure_campaign(manifest)
            assert cid1 == cid2
            assert store.run_count(manifest.campaign) == len(manifest.runs)

    def test_manifest_round_trips(self):
        manifest = make_manifest()
        with CampaignStore(":memory:") as store:
            store.ensure_campaign(manifest)
            assert store.manifest(manifest.campaign) == manifest

    def test_write_behind_buffer_flushes_in_chunks(self):
        manifest = make_manifest(n=8)
        with CampaignStore(":memory:", chunk_size=3) as store:
            store.ensure_campaign(manifest)
            for i, run in enumerate(manifest.runs[:2]):
                store.add_result(manifest.campaign, run.run_id, value={"loss": float(i)})
            # below chunk_size: still buffered
            assert len(store._buffer) == 2
            store.add_result(
                manifest.campaign, manifest.runs[2].run_id, value={"loss": 9.0}
            )
            # hit chunk_size: flushed
            assert len(store._buffer) == 0

    def test_queries_flush_first(self):
        manifest = make_manifest()
        with CampaignStore(":memory:", chunk_size=500) as store:
            store.ensure_campaign(manifest)
            run = manifest.runs[0]
            store.add_result(manifest.campaign, run.run_id, value={"loss": 1.0})
            payload = store.read_run_result(manifest.campaign, run.run_id)
            assert payload["value"] == {"loss": 1.0}

    def test_unknown_campaign_raises(self):
        with CampaignStore(":memory:") as store:
            with pytest.raises(StoreError, match="not in the store"):
                store.add_result("ghost", "g/run-0000", value=1)

    def test_statuses_and_summary(self):
        manifest = make_manifest()
        with CampaignStore(":memory:") as store:
            store.ensure_campaign(manifest)
            assert set(store.statuses(manifest.campaign).values()) == {"pending"}
            store.set_statuses(
                manifest.campaign, {manifest.runs[0].run_id: RunStatus.DONE}
            )
            summary = store.summary(manifest.campaign)
            assert summary["done"] == 1
            assert summary["pending"] == len(manifest.runs) - 1

    def test_read_run_result_none_until_executed(self):
        manifest = make_manifest()
        with CampaignStore(":memory:") as store:
            store.ensure_campaign(manifest)
            assert store.read_run_result(manifest.campaign, manifest.runs[0].run_id) is None

    def test_record_run_results_skips_interrupted(self):
        manifest = make_manifest()
        with CampaignStore(":memory:") as store:
            store.ensure_campaign(manifest)
            store.record_run_results(
                manifest.campaign,
                {
                    manifest.runs[0].run_id: {
                        "run_id": manifest.runs[0].run_id,
                        "status": "done", "value": {"loss": 1.0}, "error": None,
                        "traceback": None, "elapsed": 0.1, "attempts": 1, "seed": 7,
                    },
                    manifest.runs[1].run_id: {
                        "run_id": manifest.runs[1].run_id,
                        "status": "interrupted", "value": None, "error": None,
                        "traceback": None, "elapsed": 0.0, "attempts": 1, "seed": 8,
                    },
                },
            )
            assert store.read_run_result(manifest.campaign, manifest.runs[0].run_id)
            assert store.read_run_result(manifest.campaign, manifest.runs[1].run_id) is None

    def test_reports_round_trip(self):
        manifest = make_manifest()
        with CampaignStore(":memory:") as store:
            store.ensure_campaign(manifest)
            store.record_reports(
                manifest.campaign,
                [{"campaign": manifest.campaign, "group": "g", "makespan": 12.5}],
            )
            [report] = store.reports(manifest.campaign)
            assert report["makespan"] == 12.5

    def test_metrics_from_value_filters_non_numeric(self):
        metrics = metrics_from_value(
            {"loss": 1.5, "label": "x", "converged": True, "steps": 10}
        )
        assert metrics == {"loss": 1.5, "steps": 10.0}
        assert metrics_from_value(3.0) == {}


class TestPersistence:
    def test_store_survives_reopen(self, tmp_path):
        manifest = make_manifest()
        db = tmp_path / "store.sqlite"
        with CampaignStore(db) as store:
            fill(store, manifest)
        with CampaignStore(db) as store:
            assert store.campaigns() == [manifest.campaign]
            assert store.summary(manifest.campaign)["done"] == len(manifest.runs)
            obj = Objective("o", metric="loss")
            assert store.catalog(manifest.campaign).best(obj).run_id == "g/run-0000"


class TestMigration:
    def make_directory(self, tmp_path, manifest):
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        directory.update_status({r.run_id: RunStatus.DONE for r in manifest.runs})
        for i, run in enumerate(manifest.runs):
            directory.write_run_result(
                run.run_id,
                {
                    "run_id": run.run_id, "status": "done",
                    "value": {"loss": float(i % 5) + 0.5,
                              "cost": float(len(manifest.runs) - i)},
                    "error": None, "traceback": None,
                    "elapsed": 0.01 * i, "attempts": 1, "seed": i,
                },
            )
        return directory

    def test_round_trip_identical_catalog_answers(self, tmp_path):
        manifest = make_manifest(n=6)
        directory = self.make_directory(tmp_path, manifest)
        # the file-based in-memory catalog (the pre-store answer)
        from repro.cheetah.catalog import CampaignCatalog

        mem = CampaignCatalog(manifest.campaign)
        for run in manifest.runs:
            payload = directory.read_run_result(run.run_id)
            mem.add(run.run_id, dict(run.parameters),
                    metrics_from_value(payload["value"]))

        with CampaignStore(":memory:") as store:
            summary = ingest_directory(store, directory.root)
            assert summary["results"] == len(manifest.runs)
            cat = store.catalog(manifest.campaign)
            obj = Objective("o", metric="loss")
            cost = Objective("c", metric="cost")
            assert cat.best(obj).run_id == mem.best(obj).run_id
            assert [r.run_id for r in cat.rank(obj)] == [
                r.run_id for r in mem.rank(obj)
            ]
            assert sorted(r.run_id for r in cat.pareto_front([obj, cost])) == sorted(
                r.run_id for r in mem.pareto_front([obj, cost])
            )

    def test_export_materializes_result_files(self, tmp_path):
        manifest = make_manifest()
        directory = self.make_directory(tmp_path, manifest)
        with CampaignStore(":memory:") as store:
            ingest_directory(store, directory.root)
            # wipe the files, re-export from the store
            for run in manifest.runs:
                (directory.run_dir(run.run_id) / "result.json").unlink()
            written = export_directory(store, directory.root)
        assert written == len(manifest.runs)
        payload = directory.read_run_result(manifest.runs[0].run_id)
        assert payload["status"] == "done"

    def test_migration_respects_checkpoint_journal(self, tmp_path):
        """Statuses come from the journal overlay — what resume trusts."""
        from repro.resilience import CampaignCheckpoint

        manifest = make_manifest()
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        checkpoint = CampaignCheckpoint(directory)
        rid = manifest.runs[0].run_id
        checkpoint.record(rid, RunStatus.RUNNING, time=1.0)
        checkpoint.record(rid, RunStatus.DONE, time=2.0)
        with CampaignStore(":memory:") as store:
            ingest_directory(store, directory.root)
            assert store.statuses(manifest.campaign)[rid] == "done"


class TestDirectoryStoreIntegration:
    def test_record_results_store_only_by_default(self, tmp_path):
        manifest = make_manifest()
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        rid = manifest.runs[0].run_id
        directory.record_results(
            {rid: {"run_id": rid, "status": "done", "value": {"loss": 2.0},
                   "error": None, "traceback": None, "elapsed": 0.1,
                   "attempts": 1, "seed": 3}}
        )
        assert directory.store_path().exists()
        assert not (directory.run_dir(rid) / "result.json").exists()
        # one read API either way
        assert directory.read_run_result(rid)["value"] == {"loss": 2.0}

    def test_record_results_json_export_opt_in(self, tmp_path):
        manifest = make_manifest()
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        rid = manifest.runs[0].run_id
        directory.record_results(
            {rid: {"run_id": rid, "status": "done", "value": 1.5, "error": None,
                   "traceback": None, "elapsed": 0.1, "attempts": 1, "seed": 3}},
            json_export=True,
        )
        assert (directory.run_dir(rid) / "result.json").exists()

    def test_status_updates_mirror_into_store(self, tmp_path):
        manifest = make_manifest()
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        with directory.open_store() as store:  # materialize the store
            assert store.run_count(manifest.campaign) == len(manifest.runs)
        rid = manifest.runs[0].run_id
        directory.set_status(rid, RunStatus.RUNNING)
        with directory.open_store() as store:
            assert store.statuses(manifest.campaign)[rid] == "running"


class TestDriveIntegration:
    def test_real_drive_records_into_store(self, tmp_path):
        from repro.savanna import execute_manifest

        manifest = make_manifest()
        result = execute_manifest(
            manifest,
            backend="local-threads",
            directory=tmp_path,
            app_fn=_loss_app,
            max_workers=2,
        )
        assert len(result.completed) == len(manifest.runs)
        directory = CampaignDirectory.open(tmp_path / manifest.campaign)
        assert directory.store_path().exists()
        # store-only by default: no per-run JSON files
        rid = manifest.runs[0].run_id
        assert not (directory.run_dir(rid) / "result.json").exists()
        payload = directory.read_run_result(rid)
        assert payload["status"] == "done"
        with directory.open_store() as store:
            assert store.summary(manifest.campaign)["done"] == len(manifest.runs)
            obj = Objective("o", metric="loss")
            assert store.catalog(manifest.campaign).best(obj) is not None

    def test_real_drive_json_results_opt_in(self, tmp_path):
        from repro.savanna import execute_manifest

        manifest = make_manifest()
        execute_manifest(
            manifest,
            backend="local-threads",
            directory=tmp_path,
            app_fn=_loss_app,
            json_results=True,
            max_workers=2,
        )
        directory = CampaignDirectory.open(tmp_path / manifest.campaign)
        assert (directory.run_dir(manifest.runs[0].run_id) / "result.json").exists()

    def test_real_drive_store_false_is_legacy_path(self, tmp_path):
        from repro.savanna import execute_manifest

        manifest = make_manifest()
        execute_manifest(
            manifest,
            backend="local-threads",
            directory=tmp_path,
            app_fn=_loss_app,
            store=False,
            max_workers=2,
        )
        directory = CampaignDirectory.open(tmp_path / manifest.campaign)
        assert not directory.store_path().exists()
        assert (directory.run_dir(manifest.runs[0].run_id) / "result.json").exists()


def _loss_app(parameters):
    return {"loss": float(parameters["x"]) + (0.25 if parameters["mode"] == "b" else 0.0)}


class TestCli:
    def run_cli(self, *args):
        env = {"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")}
        return subprocess.run(
            [sys.executable, "-m", "repro.store", *args],
            capture_output=True, text=True, env=env,
        )

    @pytest.fixture()
    def campaign_dir(self, tmp_path):
        manifest = make_manifest()
        directory = TestMigration().make_directory(tmp_path, manifest)
        return directory.root

    def test_migrate_then_query(self, campaign_dir):
        migrated = self.run_cli("migrate", str(campaign_dir))
        assert migrated.returncode == 0, migrated.stderr
        assert "8 runs" in migrated.stdout

        best = self.run_cli("query", str(campaign_dir), "best", "--metric", "loss")
        assert best.returncode == 0, best.stderr
        assert "g/run-0000" in best.stdout

        pareto = self.run_cli(
            "query", str(campaign_dir), "pareto",
            "--objective", "loss:minimize", "--objective", "cost:minimize",
        )
        assert pareto.returncode == 0, pareto.stderr
        assert pareto.stdout.strip()

        status = self.run_cli("status", str(campaign_dir))
        assert status.returncode == 0
        assert "done" in status.stdout

    def test_query_without_migrate_fails_cleanly(self, tmp_path):
        db = tmp_path / "empty.sqlite"
        CampaignStore(db).close()
        result = self.run_cli("query", str(db), "best", "--metric", "loss")
        assert result.returncode == 1
        assert "error:" in result.stderr

    def test_info_lists_campaigns(self, campaign_dir):
        assert self.run_cli("migrate", str(campaign_dir)).returncode == 0
        info = self.run_cli("info", str(campaign_dir))
        assert info.returncode == 0
        assert "store-test" in info.stdout

    def test_export_cli(self, campaign_dir):
        assert self.run_cli("migrate", str(campaign_dir)).returncode == 0
        for result_file in campaign_dir.glob("g/run-*/result.json"):
            result_file.unlink()
        export = self.run_cli("export", str(campaign_dir))
        assert export.returncode == 0
        assert "exported 8" in export.stdout
        assert json.loads(
            (campaign_dir / "g" / "run-0000" / "result.json").read_text()
        )["status"] == "done"
