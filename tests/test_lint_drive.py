"""The savanna.drive pre-run lint gate and the shared directory resolver."""

from __future__ import annotations

import pytest

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, resolve_campaign_dir
from repro.cheetah.manifest import CampaignManifest, RunSpec, manifest_from_json, manifest_to_json
from repro.lint import CampaignLintError
from repro.observability import CAMPAIGN_LINTED
from repro.savanna import execute_campaign, execute_manifest

from conftest import make_cluster


def make_manifest(n=6, nodes=4, walltime=300.0, metadata=None):
    camp = Campaign("drive", app=AppSpec("app"), metadata=metadata)
    sg = camp.sweep_group("g", nodes=nodes, walltime=walltime)
    sg.add(Sweep([SweepParameter("x", range(n))]))
    return camp.to_manifest()


def broken_manifest():
    """One run demanding more nodes than its group envelope (FAIR003)."""
    return CampaignManifest(
        campaign="broken", app="app",
        runs=(RunSpec(run_id="g/run-0000", group="g",
                      parameters={"x": 0}, nodes=64),),
        groups=({"name": "g", "nodes": 4, "walltime": 300.0},),
    )


class TestPreRunGate:
    def test_refuses_campaign_with_errors(self):
        with pytest.raises(CampaignLintError, match="FAIR003"):
            execute_manifest(broken_manifest(), lambda p: 10.0, make_cluster())

    def test_error_carries_the_report(self):
        with pytest.raises(CampaignLintError) as exc:
            execute_manifest(broken_manifest(), lambda p: 10.0, make_cluster())
        assert exc.value.campaign == "broken"
        assert "FAIR003" in exc.value.report.rule_ids()

    def test_lint_false_overrides(self):
        # The analyzer objects, but an explicit opt-out still executes
        # (the run starves at the scheduler, which is the user's problem).
        cluster = make_cluster(nodes=4)
        result = execute_manifest(
            broken_manifest(), lambda p: 10.0, cluster,
            lint=False, max_allocations=1,
        )
        assert not result.all_done

    def test_execute_campaign_gates_too(self):
        with pytest.raises(CampaignLintError):
            execute_campaign(broken_manifest(), lambda p: 10.0, make_cluster())

    def test_cluster_oversubscription_caught(self):
        # FAIR004 needs the cluster model: a 100-node group on 4 nodes.
        manifest = make_manifest(nodes=100)
        with pytest.raises(CampaignLintError, match="FAIR004"):
            execute_manifest(manifest, lambda p: 10.0, make_cluster(nodes=4))

    def test_clean_campaign_executes_and_emits_event(self):
        cluster = make_cluster(nodes=4)
        seen = []
        cluster.bus.subscribe(seen.append)
        result = execute_manifest(manifest := make_manifest(), lambda p: 10.0,
                                  cluster)
        assert result.all_done
        linted = [e for e in seen if e.name == CAMPAIGN_LINTED]
        assert len(linted) == 1
        assert linted[0].fields == {
            "campaign": manifest.campaign, "errors": 0, "warnings": 0,
            "infos": 0, "suppressed": 0,
        }

    def test_metadata_suppression_unblocks_execution(self):
        # Suppressing the failing rule via campaign metadata lets the
        # same campaign through the gate — and the decision is recorded
        # in the manifest, not in the invocation.
        manifest = CampaignManifest(
            campaign="broken", app="app",
            runs=broken_manifest().runs, groups=broken_manifest().groups,
            metadata={"lint": {"suppress": ["FAIR003"]}},
        )
        cluster = make_cluster(nodes=4)
        seen = []
        cluster.bus.subscribe(seen.append)
        result = execute_manifest(manifest, lambda p: 10.0, cluster,
                                  max_allocations=1)
        assert not result.all_done  # still starves; but the gate opened
        linted = [e for e in seen if e.name == CAMPAIGN_LINTED]
        assert linted[0].fields["suppressed"] == 1

    def test_directory_accepts_plain_path(self, tmp_path):
        manifest = make_manifest()
        result = execute_manifest(
            manifest, lambda p: 10.0, make_cluster(nodes=4),
            directory=tmp_path,
        )
        assert result.all_done
        directory = CampaignDirectory.open(tmp_path / manifest.campaign)
        assert directory.summary()["done"] == 6


class TestResolveCampaignDir:
    def test_creates_then_reopens(self, tmp_path):
        manifest = make_manifest()
        created = resolve_campaign_dir(tmp_path, manifest, create=True)
        assert created.root == tmp_path / "drive"
        reopened = resolve_campaign_dir(tmp_path, manifest)
        assert reopened.root == created.root

    def test_accepts_campaign_root_itself(self, tmp_path):
        manifest = make_manifest()
        created = resolve_campaign_dir(tmp_path, manifest, create=True)
        direct = resolve_campaign_dir(created.root)
        assert direct.manifest.campaign == "drive"

    def test_rejects_mismatched_campaign(self, tmp_path):
        created = resolve_campaign_dir(tmp_path, make_manifest(), create=True)
        other = CampaignManifest(campaign="other", app="app",
                                 runs=(), groups=())
        with pytest.raises(ValueError, match="other"):
            resolve_campaign_dir(created.root, other)

    def test_missing_without_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_campaign_dir(tmp_path / "nowhere")


class TestMetadataRoundTrip:
    def test_metadata_survives_json(self):
        manifest = make_manifest(metadata={"lint": {"suppress": ["FAIR005"]},
                                           "owner": "me"})
        back = manifest_from_json(manifest_to_json(manifest))
        assert back.metadata == {"lint": {"suppress": ["FAIR005"]},
                                 "owner": "me"}

    def test_absent_metadata_defaults_empty(self):
        back = manifest_from_json(manifest_to_json(make_manifest()))
        assert back.metadata == {}
