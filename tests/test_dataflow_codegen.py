"""Tests for generated communication components."""

import pytest

from repro.dataflow.codegen import CommunicationCodegen, generated_source_reuse
from repro.dataflow.components import Sink
from repro.dataflow.graph import DataflowGraph
from repro.metadata.schema import DataSchema, Field
from repro.metadata.semantics import ConsumptionPattern, DataSemanticsDescriptor, Ordering


def schema(extra=()):
    fields = (Field("v", "int64"), Field("t", "float64")) + tuple(extra)
    return DataSchema("telemetry", "1", fields)


def semantics(ordered=True):
    return DataSemanticsDescriptor(
        ordering=Ordering.ORDERED if ordered else Ordering.UNORDERED,
        consumption=ConsumptionPattern.ELEMENT,
    )


class TestGeneration:
    def test_generates_collector_and_forwarder(self):
        files = CommunicationCodegen().generate(schema(), semantics())
        assert {f.template_name for f in files} == {"collector", "forwarder"}
        assert {f.relpath for f in files} == {
            "collector_telemetry.py",
            "forwarder_telemetry.py",
        }

    def test_requires_self_describing_schema(self):
        bare = DataSchema("blob", "1")
        with pytest.raises(ValueError, match="SELF_DESCRIBING"):
            CommunicationCodegen().generate(bare, semantics())

    def test_materialize_yields_classes(self):
        cg = CommunicationCodegen()
        classes = cg.materialize(cg.generate(schema(), semantics()))
        assert set(classes) == {
            "GeneratedTelemetryCollector",
            "GeneratedTelemetryForwarder",
        }


class TestGeneratedBehaviour:
    def make_classes(self, ordered=True, extra=()):
        cg = CommunicationCodegen()
        return cg.materialize(cg.generate(schema(extra), semantics(ordered)))

    def run_graph(self, collector, forwarder):
        g = DataflowGraph("gen")
        g.add(collector)
        g.add(forwarder)
        sink = g.add(Sink("k"))
        g.connect(collector, "out", forwarder, "in")
        g.connect(forwarder, "out", sink, "in")
        g.run()
        return sink

    def test_collector_validates_schema_fields(self):
        classes = self.make_classes()
        bad_stream = [{"v": 1}]  # missing "t"
        collector = classes["GeneratedTelemetryCollector"]("c", bad_stream)
        forwarder = classes["GeneratedTelemetryForwarder"]("f")
        with pytest.raises(ValueError, match="missing fields"):
            self.run_graph(collector, forwarder)

    def test_forwarder_marshals_field_order(self):
        classes = self.make_classes()
        stream = [{"t": 0.5, "v": 7}]  # note reversed key order
        collector = classes["GeneratedTelemetryCollector"]("c", stream)
        forwarder = classes["GeneratedTelemetryForwarder"]("f")
        sink = self.run_graph(collector, forwarder)
        assert sink.payloads() == [(7, 0.5)]

    def test_collector_drops_extra_fields(self):
        classes = self.make_classes()
        stream = [{"v": 1, "t": 2.0, "junk": "x"}]
        collector = classes["GeneratedTelemetryCollector"]("c", stream)
        forwarder = classes["GeneratedTelemetryForwarder"]("f")
        sink = self.run_graph(collector, forwarder)
        assert sink.payloads() == [(1, 2.0)]

    def test_order_enforcement_compiled_in(self):
        cg = CommunicationCodegen()
        forwarder = [
            f for f in cg.generate(schema(), semantics(ordered=True))
            if f.template_name == "forwarder"
        ][0]
        assert "PRESERVE_ORDER = True" in forwarder.content

    def test_unordered_semantics_disable_enforcement(self):
        cg = CommunicationCodegen()
        forwarder = [
            f for f in cg.generate(schema(), semantics(ordered=False))
            if f.template_name == "forwarder"
        ][0]
        assert "PRESERVE_ORDER = False" in forwarder.content

    def test_order_violation_raises_at_runtime(self):
        classes = self.make_classes(ordered=True)
        fwd = classes["GeneratedTelemetryForwarder"]("f")
        from repro.dataflow.channels import Channel, DataItem

        inp, out = Channel("i"), Channel("o")
        fwd.bind_input("in", inp)
        fwd.bind_output("out", out)
        inp.push(DataItem(payload={"v": 1, "t": 0.0}, seq=5))
        inp.push(DataItem(payload={"v": 2, "t": 1.0}, seq=3))  # out of order
        fwd.step()
        with pytest.raises(RuntimeError, match="order violation"):
            fwd.step()


class TestReuseMetric:
    def test_identical_generation_full_reuse(self):
        cg = CommunicationCodegen()
        files = cg.generate(schema(), semantics())
        assert generated_source_reuse(files, files) == 1.0

    def test_schema_change_partial_reuse(self):
        cg = CommunicationCodegen()
        before = cg.generate(schema(), semantics())
        after = cg.generate(schema(extra=(Field("q", "int8"),)), semantics())
        reuse = generated_source_reuse(before, after)
        assert 0.8 < reuse < 1.0

    def test_empty_inputs(self):
        assert generated_source_reuse([], []) == 1.0
