"""Tests for execute_manifest, the experiments CLI, and the Merge component."""

import pytest

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.cheetah.directory import CampaignDirectory, RunStatus
from repro.savanna import execute_manifest

from conftest import make_cluster


def make_manifest(n=10, nodes=4, walltime=300.0):
    camp = Campaign("drive", app=AppSpec("app"))
    sg = camp.sweep_group("g", nodes=nodes, walltime=walltime)
    sg.add(Sweep([SweepParameter("x", range(n))]))
    return camp.to_manifest()


class TestExecuteManifest:
    def test_runs_whole_campaign(self):
        manifest = make_manifest()
        result = execute_manifest(
            manifest, lambda p: 50.0, make_cluster(nodes=4), max_allocations=2
        )
        assert result.all_done
        assert len(result.tasks) == 10

    def test_static_backend_selectable(self):
        manifest = make_manifest()
        result = execute_manifest(
            manifest,
            lambda p: 50.0,
            make_cluster(nodes=4),
            backend="static-sets",
            max_allocations=3,
        )
        assert result.all_done

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown executor backend"):
            execute_manifest(
                make_manifest(), lambda p: 1.0, make_cluster(), backend="slurm"
            )

    def test_directory_resume_skips_done(self, tmp_path):
        manifest = make_manifest(n=6)
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        directory.update_status(
            {"g/run-0000": RunStatus.DONE, "g/run-0001": RunStatus.DONE}
        )
        result = execute_manifest(
            manifest,
            lambda p: 10.0,
            make_cluster(nodes=4),
            directory=directory,
            max_allocations=1,
        )
        assert len(result.tasks) == 4  # only the pending ones ran
        assert directory.summary()["done"] == 6

    def test_directory_records_partial_progress(self, tmp_path):
        manifest = make_manifest(n=8, nodes=2, walltime=120.0)
        directory = CampaignDirectory(tmp_path, manifest)
        directory.create()
        execute_manifest(
            manifest,
            lambda p: 50.0,  # 2 nodes x 120s -> 4 complete per allocation
            make_cluster(nodes=2),
            directory=directory,
            max_allocations=1,
        )
        summary = directory.summary()
        assert summary["done"] == 4
        assert summary["pending"] == 4

    def test_multi_group_requires_selection(self):
        camp = Campaign("mg", app=AppSpec("a"))
        camp.sweep_group("g1", nodes=2, walltime=60.0).add(
            Sweep([SweepParameter("x", [1])])
        )
        camp.sweep_group("g2", nodes=2, walltime=60.0).add(
            Sweep([SweepParameter("x", [2])])
        )
        manifest = camp.to_manifest()
        with pytest.raises(ValueError, match="multiple groups"):
            execute_manifest(manifest, lambda p: 1.0, make_cluster())
        result = execute_manifest(
            manifest, lambda p: 1.0, make_cluster(), group="g2"
        )
        assert [t.name for t in result.tasks] == ["g2/run-0000"]


class TestExperimentsCli:
    def test_single_figure_to_directory(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        code = main(["--figure", "2", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert (tmp_path / "figure2.txt").exists()

    def test_default_runs_listed_figures(self):
        from repro.experiments.__main__ import DRIVERS

        assert sorted(DRIVERS) == [1, 2, 3, 4, 5, 6, 7]

    def test_bad_figure_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--figure", "9"])


class TestMerge:
    def run_merge(self, streams):
        from repro.dataflow import DataflowGraph, Merge, Sink, Source

        g = DataflowGraph("m")
        merge = g.add(Merge("merge", inputs=tuple(f"in{i}" for i in range(len(streams)))))
        sink = g.add(Sink("k"))
        for i, stream in enumerate(streams):
            src = g.add(Source(f"s{i}", stream))
            g.connect(src, "out", merge, f"in{i}")
        g.connect(merge, "out", sink, "in")
        g.run()
        return sink

    def test_merges_all_items(self):
        sink = self.run_merge([range(5), range(100, 103)])
        assert sorted(sink.payloads()) == [0, 1, 2, 3, 4, 100, 101, 102]

    def test_round_robin_interleaves(self):
        sink = self.run_merge([[1, 2, 3], [10, 20, 30]])
        payloads = sink.payloads()
        # service alternates between the two inputs
        assert payloads[0] in (1, 10)
        first_from_a = payloads.index(1)
        first_from_b = payloads.index(10)
        assert abs(first_from_a - first_from_b) == 1

    def test_closes_after_all_inputs_end(self):
        sink = self.run_merge([[1], [], [2]])
        assert sorted(sink.payloads()) == [1, 2]

    def test_single_input_passthrough(self):
        sink = self.run_merge([range(4)])
        assert sink.payloads() == [0, 1, 2, 3]

    def test_requires_inputs(self):
        from repro.dataflow import Merge, PortError

        with pytest.raises(PortError):
            Merge("m", inputs=())

    def test_punctuation_flows_through(self):
        from repro.dataflow import DataflowGraph, Merge, Punctuation, Sink, Source

        g = DataflowGraph("m")
        merge = g.add(Merge("merge", inputs=("in0",)))
        sink = g.add(Sink("k"))
        src = g.add(Source("s", [1]))
        ch = g.connect(src, "out", merge, "in0")
        ch.push(Punctuation("group-boundary"))
        g.connect(merge, "out", sink, "in")
        g.run()
        assert [p.kind for p in sink.punctuation] == ["group-boundary"]
