"""Tests for the discrete-event core."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == 3.5

    def test_schedule_during_event(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(2.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        end = sim.run()
        assert fired == ["first", "second"]
        assert end == 3.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="cannot schedule in the past"):
            sim.schedule_at(0.5, lambda: None)

    def test_empty_run_returns_now(self):
        sim = Simulator()
        assert sim.run() == 0.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending() == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.peek() == 2.0


class TestRunUntil:
    def test_until_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        # remaining event still queued
        assert sim.pending() == 1

    def test_until_before_now_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["b"]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
def test_clock_is_monotone_nondecreasing(delays):
    """Property: observed firing times never decrease."""
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
