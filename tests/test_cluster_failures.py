"""Tests for the MTTF failure model."""

import math

import pytest

from repro.cluster.failures import FailureModel


class TestDisabled:
    def test_none_mttf_never_fails(self):
        model = FailureModel(mttf=None)
        assert model.failure_probability(1e9, nodes=1000) == 0.0
        assert model.sample_failure_time(1e9, nodes=1000) is None
        assert model.expected_failures(1e9) == 0.0


class TestProbability:
    def test_exponential_formula(self):
        model = FailureModel(mttf=1000.0)
        assert model.failure_probability(1000.0) == pytest.approx(1 - math.exp(-1))

    def test_more_nodes_more_risk(self):
        model = FailureModel(mttf=1000.0)
        assert model.failure_probability(100.0, nodes=10) > model.failure_probability(100.0, nodes=1)

    def test_probability_bounded(self):
        model = FailureModel(mttf=10.0)
        p = model.failure_probability(1e9, nodes=100)
        assert 0 <= p <= 1

    def test_expected_failures_linear_in_duration(self):
        model = FailureModel(mttf=100.0)
        assert model.expected_failures(200.0) == pytest.approx(2.0)
        assert model.expected_failures(200.0, nodes=3) == pytest.approx(6.0)


class TestSampling:
    def test_sample_within_duration_or_none(self):
        model = FailureModel(mttf=500.0, seed=1)
        for _ in range(200):
            t = model.sample_failure_time(100.0)
            assert t is None or 0 <= t < 100.0

    def test_short_task_rarely_fails(self):
        model = FailureModel(mttf=1e7, seed=2)
        fails = sum(model.sample_failure_time(60.0) is not None for _ in range(500))
        assert fails <= 3

    def test_empirical_rate_matches_theory(self):
        model = FailureModel(mttf=1000.0, seed=3)
        n = 4000
        fails = sum(model.sample_failure_time(500.0) is not None for _ in range(n))
        expected = 1 - math.exp(-0.5)
        assert fails / n == pytest.approx(expected, abs=0.04)

    def test_deterministic_per_seed(self):
        a = FailureModel(mttf=100.0, seed=9)
        b = FailureModel(mttf=100.0, seed=9)
        assert [a.sample_failure_time(50.0) for _ in range(10)] == [
            b.sample_failure_time(50.0) for _ in range(10)
        ]

    def test_invalid_mttf_rejected(self):
        with pytest.raises(ValueError):
            FailureModel(mttf=0)
