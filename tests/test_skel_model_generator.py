"""Tests for Skel generation models and the generator."""

import json

import pytest

from repro.skel.generator import (
    Generator,
    TemplateLibrary,
    is_stale,
    model_fingerprint,
)
from repro.skel.model import ModelField, ModelSchema, ModelValidationError, SkelModel
from repro.skel.templates import TemplateError


def schema():
    return ModelSchema(
        name="demo",
        fields=(
            ModelField("who", "string"),
            ModelField("count", "int", required=False, default=3),
            ModelField("mode", "string", required=False, default="fast", choices=("fast", "slow")),
        ),
    )


class TestModelSchema:
    def test_defaults_filled(self):
        model = SkelModel(schema(), {"who": "x"})
        assert model["count"] == 3
        assert model["mode"] == "fast"

    def test_missing_required_rejected(self):
        with pytest.raises(ModelValidationError, match="missing required"):
            SkelModel(schema(), {})

    def test_unknown_field_rejected(self):
        with pytest.raises(ModelValidationError, match="unknown model fields"):
            SkelModel(schema(), {"who": "x", "bogus": 1})

    def test_type_checked(self):
        with pytest.raises(ModelValidationError, match="expected int"):
            SkelModel(schema(), {"who": "x", "count": "three"})

    def test_bool_is_not_int(self):
        with pytest.raises(ModelValidationError):
            SkelModel(schema(), {"who": "x", "count": True})

    def test_choices_enforced(self):
        with pytest.raises(ModelValidationError, match="not in choices"):
            SkelModel(schema(), {"who": "x", "mode": "warp"})

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate field names"):
            ModelSchema("s", (ModelField("a"), ModelField("a")))

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown field type"):
            ModelField("a", "quaternion")

    def test_field_lookup(self):
        s = schema()
        assert s.field("who").type == "string"
        with pytest.raises(KeyError):
            s.field("nope")


class TestModelUpdate:
    def test_updated_revalidates(self):
        model = SkelModel(schema(), {"who": "x"})
        with pytest.raises(ModelValidationError):
            model.updated(mode="warp")

    def test_updated_returns_new_model(self):
        model = SkelModel(schema(), {"who": "x"})
        m2 = model.updated(who="y")
        assert model["who"] == "x" and m2["who"] == "y"

    def test_params_include_model_name(self):
        model = SkelModel(schema(), {"who": "x"})
        assert model.params()["model_name"] == "demo"


class TestModelJson:
    def test_roundtrip(self):
        model = SkelModel(schema(), {"who": "x", "count": 9})
        again = SkelModel.from_json(model.to_json(), schema())
        assert again.values == model.values

    def test_from_file(self, tmp_path):
        p = tmp_path / "model.json"
        p.write_text(json.dumps({"schema": "demo", "values": {"who": "file"}}))
        model = SkelModel.from_json(p, schema())
        assert model["who"] == "file"

    def test_schema_name_mismatch_rejected(self):
        text = json.dumps({"schema": "other", "values": {"who": "x"}})
        with pytest.raises(ModelValidationError, match="declares schema"):
            SkelModel.from_json(text, schema())

    def test_bare_values_accepted(self):
        model = SkelModel.from_json(json.dumps({"who": "bare"}), schema())
        assert model["who"] == "bare"


class TestGenerator:
    def make(self):
        lib = TemplateLibrary()
        lib.add("greet", "out/${who}.txt", "hello ${who}\n")
        lib.add("json-spec", "spec.json", '{"who": "${who}"}\n', comment=None)
        return lib, Generator(lib)

    def test_generates_all_templates_by_default(self):
        lib, gen = self.make()
        model = SkelModel(schema(), {"who": "x"})
        files = gen.generate(model)
        assert {f.relpath for f in files} == {"out/x.txt", "spec.json"}

    def test_fingerprint_stamp_present_for_scripts(self):
        lib, gen = self.make()
        model = SkelModel(schema(), {"who": "x"})
        greet = [f for f in gen.generate(model) if f.template_name == "greet"][0]
        assert "model-fingerprint=" in greet.content.splitlines()[0]

    def test_no_stamp_for_comment_none(self):
        lib, gen = self.make()
        model = SkelModel(schema(), {"who": "x"})
        spec = [f for f in gen.generate(model) if f.template_name == "json-spec"][0]
        assert "model-fingerprint" not in spec.content
        json.loads(spec.content)

    def test_shebang_stays_first_line(self):
        lib = TemplateLibrary()
        lib.add("script", "run.sh", "#!/bin/bash\necho ${who}\n")
        model = SkelModel(schema(), {"who": "x"})
        out = Generator(lib).generate(model)[0]
        lines = out.content.splitlines()
        assert lines[0] == "#!/bin/bash"
        assert "model-fingerprint" in lines[1]

    def test_missing_variable_names_template(self):
        lib = TemplateLibrary()
        lib.add("bad", "x.txt", "${not_in_model}")
        model = SkelModel(schema(), {"who": "x"})
        with pytest.raises(TemplateError, match="'bad'"):
            Generator(lib).generate(model)

    def test_colliding_paths_rejected(self):
        lib = TemplateLibrary()
        lib.add("a", "same.txt", "a")
        lib.add("b", "same.txt", "b")
        model = SkelModel(schema(), {"who": "x"})
        with pytest.raises(ValueError, match="both"):
            Generator(lib).generate(model)

    def test_write_creates_files(self, tmp_path):
        lib, gen = self.make()
        model = SkelModel(schema(), {"who": "w"})
        paths = gen.write(model, tmp_path)
        assert all(p.exists() for p in paths)
        assert (tmp_path / "out" / "w.txt").read_text().endswith("hello w\n")

    def test_generate_per_item(self):
        lib = TemplateLibrary()
        lib.add("item", "part_${g.i}.sh", "part ${g.i} of ${who}\n")
        model = SkelModel(schema(), {"who": "x"})
        files = Generator(lib).generate_per_item(
            model, "item", "g", [{"i": 0}, {"i": 1}]
        )
        assert [f.relpath for f in files] == ["part_0.sh", "part_1.sh"]
        assert "part 1 of x" in files[1].content

    def test_generate_per_item_path_collision_rejected(self):
        lib = TemplateLibrary()
        lib.add("item", "static.sh", "x ${g.i}\n")
        model = SkelModel(schema(), {"who": "x"})
        with pytest.raises(ValueError, match="collides"):
            Generator(lib).generate_per_item(model, "item", "g", [{"i": 0}, {"i": 1}])

    def test_duplicate_template_name_rejected(self):
        lib = TemplateLibrary()
        lib.add("t", "a.txt", "x")
        with pytest.raises(ValueError, match="already registered"):
            lib.add("t", "b.txt", "y")

    def test_unknown_template_lookup(self):
        lib = TemplateLibrary()
        with pytest.raises(KeyError, match="unknown template"):
            lib.get("ghost")

    def test_required_variables(self):
        lib, _gen = self.make()
        assert "who" in lib.required_variables()


class TestStaleness:
    def test_fresh_file_not_stale(self):
        lib = TemplateLibrary()
        lib.add("t", "a.sh", "run ${who}\n")
        model = SkelModel(schema(), {"who": "x"})
        f = Generator(lib).generate(model)[0]
        assert not is_stale(f.content, model)

    def test_changed_model_marks_stale(self):
        lib = TemplateLibrary()
        lib.add("t", "a.sh", "run ${who}\n")
        model = SkelModel(schema(), {"who": "x"})
        f = Generator(lib).generate(model)[0]
        assert is_stale(f.content, model.updated(who="y"))

    def test_unstamped_file_is_stale(self):
        model = SkelModel(schema(), {"who": "x"})
        assert is_stale("#!/bin/bash\necho hand-written\n", model)

    def test_fingerprint_deterministic(self):
        m1 = SkelModel(schema(), {"who": "x"})
        m2 = SkelModel(schema(), {"who": "x"})
        assert model_fingerprint(m1) == model_fingerprint(m2)

    def test_fingerprint_changes_with_values(self):
        m1 = SkelModel(schema(), {"who": "x"})
        m2 = SkelModel(schema(), {"who": "y"})
        assert model_fingerprint(m1) != model_fingerprint(m2)
