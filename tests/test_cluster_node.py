"""Tests for nodes and the node pool."""

import pytest

from repro.cluster.node import Node, NodePool


class TestNode:
    def test_busy_interval_recorded(self):
        node = Node(index=0)
        node.mark_busy(1.0)
        node.mark_idle(4.0)
        assert node.busy_intervals == [(1.0, 4.0)]
        assert node.busy_time() == 3.0

    def test_double_busy_rejected(self):
        node = Node(index=0)
        node.mark_busy(0.0)
        with pytest.raises(RuntimeError, match="already busy"):
            node.mark_busy(1.0)

    def test_idle_without_busy_rejected(self):
        node = Node(index=0)
        with pytest.raises(RuntimeError, match="not busy"):
            node.mark_idle(1.0)

    def test_end_before_start_rejected(self):
        node = Node(index=0)
        node.mark_busy(5.0)
        with pytest.raises(ValueError):
            node.mark_idle(4.0)

    def test_close_flushes_open_interval(self):
        node = Node(index=0)
        node.mark_busy(2.0)
        node.close(7.0)
        assert node.busy_intervals == [(2.0, 7.0)]
        assert not node.busy

    def test_close_idle_node_is_noop(self):
        node = Node(index=0)
        node.close(7.0)
        assert node.busy_intervals == []

    def test_busy_time_with_horizon_clips(self):
        node = Node(index=0)
        node.mark_busy(0.0)
        node.mark_idle(10.0)
        assert node.busy_time(horizon=4.0) == 4.0

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            Node(index=0, cores=0)


class TestNodePool:
    def test_acquire_lowest_indices_first(self):
        pool = NodePool(4)
        taken = pool.acquire(2)
        assert [n.index for n in taken] == [0, 1]

    def test_acquire_release_cycle(self):
        pool = NodePool(3)
        taken = pool.acquire(3)
        assert pool.free_count == 0
        pool.release(taken)
        assert pool.free_count == 3

    def test_over_acquire_rejected(self):
        pool = NodePool(2)
        pool.acquire(2)
        with pytest.raises(RuntimeError, match="only 0 free"):
            pool.acquire(1)

    def test_double_release_rejected(self):
        pool = NodePool(2)
        taken = pool.acquire(1)
        pool.release(taken)
        with pytest.raises(RuntimeError, match="released twice"):
            pool.release(taken)

    def test_release_restores_low_index_priority(self):
        pool = NodePool(4)
        first = pool.acquire(2)  # 0, 1
        pool.acquire(2)  # 2, 3
        pool.release(first)
        again = pool.acquire(1)
        assert again[0].index == 0

    def test_len(self):
        assert len(NodePool(5)) == 5

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            NodePool(0)
