"""Tests for codesign objectives and the campaign catalog."""

import pytest

from repro.cheetah.catalog import CampaignCatalog, RunRecord
from repro.cheetah.objectives import Direction, Objective, standard_objectives


def filled_catalog():
    catalog = CampaignCatalog("codesign")
    # sweep: buffer in {1,2,4}, compression in {on, off}
    data = [
        ({"buffer": 1, "compression": "off"}, {"runtime_seconds": 100, "storage_bytes": 1000}),
        ({"buffer": 2, "compression": "off"}, {"runtime_seconds": 80, "storage_bytes": 1000}),
        ({"buffer": 4, "compression": "off"}, {"runtime_seconds": 70, "storage_bytes": 1000}),
        ({"buffer": 1, "compression": "on"}, {"runtime_seconds": 120, "storage_bytes": 400}),
        ({"buffer": 2, "compression": "on"}, {"runtime_seconds": 95, "storage_bytes": 400}),
        ({"buffer": 4, "compression": "on"}, {"runtime_seconds": 85, "storage_bytes": 400}),
    ]
    for i, (params, metrics) in enumerate(data):
        catalog.add(f"run-{i:02d}", params, metrics)
    return catalog


class TestObjective:
    def test_minimize_direction(self):
        o = Objective("fast", "runtime_seconds")
        assert o.better(1.0, 2.0)
        assert not o.better(2.0, 1.0)
        assert o.best_of([3.0, 1.0, 2.0]) == 1.0

    def test_maximize_direction(self):
        o = Objective("tp", "throughput", Direction.MAXIMIZE)
        assert o.better(2.0, 1.0)
        assert o.best_of([3.0, 1.0]) == 3.0

    def test_empty_best_of_rejected(self):
        with pytest.raises(ValueError):
            Objective("x", "m").best_of([])

    def test_standard_objectives_cover_paper_examples(self):
        names = set(standard_objectives())
        assert {"optimal-runtime", "minimal-storage", "minimal-communication"} <= names


class TestCatalogQueries:
    def test_best_run(self):
        catalog = filled_catalog()
        fastest = catalog.best(Objective("fast", "runtime_seconds"))
        assert fastest.parameters == {"buffer": 4, "compression": "off"}
        smallest = catalog.best(Objective("small", "storage_bytes"))
        assert smallest.parameters["compression"] == "on"

    def test_rank_order(self):
        catalog = filled_catalog()
        ranked = catalog.rank(Objective("fast", "runtime_seconds"), k=3)
        runtimes = [r.metric("runtime_seconds") for r in ranked]
        assert runtimes == sorted(runtimes)
        assert len(ranked) == 3

    def test_pareto_front(self):
        catalog = filled_catalog()
        front = catalog.pareto_front(
            [Objective("fast", "runtime_seconds"), Objective("small", "storage_bytes")]
        )
        params = {(r.parameters["buffer"], r.parameters["compression"]) for r in front}
        # buffer=4/off is fastest; buffer=4/on is smallest among fast;
        # everything strictly dominated must be excluded.
        assert (4, "off") in params
        assert (4, "on") in params
        assert (1, "on") not in params  # dominated by (4, on)
        assert (1, "off") not in params

    def test_pareto_single_objective_is_best_set(self):
        catalog = filled_catalog()
        front = catalog.pareto_front([Objective("fast", "runtime_seconds")])
        assert len(front) == 1
        assert front[0].metric("runtime_seconds") == 70

    def test_pareto_needs_objectives(self):
        with pytest.raises(ValueError):
            filled_catalog().pareto_front([])

    def test_empty_catalog_best_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            CampaignCatalog("x").best(Objective("f", "m"))


class TestParameterImpact:
    def test_impact_identifies_dominant_parameter(self):
        catalog = filled_catalog()
        ranking = catalog.impact_ranking("storage_bytes")
        assert ranking[0][0] == "compression"  # storage is all about compression
        ranking_rt = catalog.impact_ranking("runtime_seconds")
        assert ranking_rt[0][0] == "buffer"  # runtime is mostly buffer

    def test_group_means(self):
        catalog = filled_catalog()
        impact = catalog.parameter_impact("compression", "storage_bytes")
        assert impact["group_means"] == {"off": 1000.0, "on": 400.0}
        assert impact["effect"] > 0

    def test_missing_pair_rejected(self):
        with pytest.raises(ValueError, match="no runs carry"):
            filled_catalog().parameter_impact("nonexistent", "runtime_seconds")

    def test_unknown_metric_on_record(self):
        record = RunRecord("r", {}, {"a": 1.0})
        with pytest.raises(KeyError, match="no metric"):
            record.metric("b")


class TestPersistence:
    def test_json_roundtrip(self):
        catalog = filled_catalog()
        again = CampaignCatalog.from_json(catalog.to_json())
        assert again.campaign == catalog.campaign
        assert len(again) == len(catalog)
        assert again.records() == catalog.records()

    def test_duplicate_run_rejected(self):
        catalog = CampaignCatalog("c")
        catalog.add("r", {}, {})
        with pytest.raises(ValueError, match="duplicate run_id"):
            catalog.add("r", {}, {})

    def test_metric_names_union(self):
        catalog = CampaignCatalog("c")
        catalog.add("a", {}, {"m1": 1})
        catalog.add("b", {}, {"m2": 2})
        assert catalog.metric_names() == {"m1", "m2"}
