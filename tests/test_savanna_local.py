"""Tests for the local (real-execution) executor."""

import pytest

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter
from repro.savanna import LocalExecutor


def make_manifest(values=(1, 2, 3)):
    camp = Campaign("local", app=AppSpec("square"))
    sg = camp.sweep_group("g", nodes=1, walltime=60.0)
    sg.add(Sweep([SweepParameter("x", values)]))
    return camp.to_manifest()


class TestLocalExecutor:
    def test_runs_every_configuration(self):
        results = LocalExecutor(max_workers=2).run(make_manifest(), lambda p: p["x"] ** 2)
        assert len(results) == 3
        assert results["g/run-0001"].value == 4
        assert all(r.status == "done" for r in results.values())

    def test_elapsed_recorded(self):
        results = LocalExecutor().run(make_manifest((1,)), lambda p: p["x"])
        assert results["g/run-0000"].elapsed >= 0

    def test_exception_isolated_per_run(self):
        def app(p):
            if p["x"] == 2:
                raise ValueError("boom")
            return p["x"]

        results = LocalExecutor(max_workers=2).run(make_manifest(), app)
        assert results["g/run-0001"].status == "failed"
        assert "ValueError: boom" in results["g/run-0001"].error
        assert results["g/run-0000"].status == "done"
        assert results["g/run-0002"].status == "done"

    def test_run_filter_selects_subset(self):
        results = LocalExecutor().run(
            make_manifest(), lambda p: p["x"], run_filter=lambda rid: rid.endswith("0002")
        )
        assert set(results) == {"g/run-0002"}

    def test_resume_via_directory_pending(self, tmp_path):
        """The directory's pending set drives resumption of a partial campaign."""
        from repro.cheetah.directory import CampaignDirectory, RunStatus

        man = make_manifest()
        cd = CampaignDirectory(tmp_path, man)
        cd.create()
        cd.set_status("g/run-0000", RunStatus.DONE)
        pending_ids = {r.run_id for r in cd.pending_runs()}
        results = LocalExecutor().run(man, lambda p: p["x"], run_filter=pending_ids.__contains__)
        assert set(results) == {"g/run-0001", "g/run-0002"}

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            LocalExecutor(max_workers=0)

    def test_failure_captures_traceback(self):
        def app(p):
            if p["x"] == 2:
                raise ValueError("boom")
            return p["x"]

        results = LocalExecutor(max_workers=2).run(make_manifest(), app)
        tb = results["g/run-0001"].traceback
        assert tb is not None
        assert "Traceback (most recent call last)" in tb
        assert 'raise ValueError("boom")' in tb
        assert results["g/run-0000"].traceback is None  # success carries none

    def test_per_run_seed_recorded(self):
        results = LocalExecutor(seed=5).run(make_manifest(), lambda p: p["x"])
        seeds = {r.seed for r in results.values()}
        assert None not in seeds
        assert len(seeds) == 3  # distinct per run

    def test_is_thread_pool_face_of_realexec(self):
        from repro.savanna import RealExecutor

        ex = LocalExecutor()
        assert isinstance(ex, RealExecutor)
        assert ex.pool == "threads"
