"""Tests for the technical-debt model."""

import pytest

from repro.gauges.debt import (
    ManualStep,
    ReuseScenario,
    automation_gain,
    builtin_scenarios,
    score,
)
from repro.gauges.levels import (
    AccessTier,
    CustomizabilityTier,
    Gauge,
    SchemaTier,
)
from repro.gauges.model import GaugeProfile, WorkflowComponent


def scenario():
    return ReuseScenario(
        name="test",
        steps=(
            ManualStep("find data", 30, Gauge.DATA_ACCESS, int(AccessTier.INTERFACE)),
            ManualStep("convert format", 60, Gauge.DATA_SCHEMA, int(SchemaTier.SELF_DESCRIBING)),
            ManualStep("decide question", 10, None),  # irreducibly human
        ),
    )


class TestManualStep:
    def test_automated_by_sufficient_profile(self):
        step = ManualStep("s", 30, Gauge.DATA_ACCESS, int(AccessTier.INTERFACE))
        p = GaugeProfile.baseline().with_tier(Gauge.DATA_ACCESS, AccessTier.QUERY)
        assert step.automated_by(p)

    def test_not_automated_below_threshold(self):
        step = ManualStep("s", 30, Gauge.DATA_ACCESS, int(AccessTier.INTERFACE))
        p = GaugeProfile.baseline().with_tier(Gauge.DATA_ACCESS, AccessTier.PROTOCOL)
        assert not step.automated_by(p)

    def test_human_only_step_never_automated(self):
        step = ManualStep("s", 30, None)
        top = GaugeProfile(
            data_access=AccessTier.QUERY,
            data_schema=SchemaTier.SELF_DESCRIBING,
        )
        assert not step.automated_by(top)

    def test_invalid_tier_value_rejected(self):
        with pytest.raises(ValueError):
            ManualStep("s", 30, Gauge.DATA_ACCESS, 99)

    def test_nonpositive_minutes_rejected(self):
        with pytest.raises(ValueError):
            ManualStep("s", 0, None)


class TestScore:
    def test_baseline_pays_everything(self):
        report = score(GaugeProfile.baseline(), scenario())
        assert report.manual_minutes == 100
        assert report.automated_minutes == 0
        assert report.automation_fraction == 0.0

    def test_partial_automation(self):
        p = GaugeProfile.baseline().with_tier(Gauge.DATA_ACCESS, AccessTier.INTERFACE)
        report = score(p, scenario())
        assert report.manual_minutes == 70
        assert report.automated_minutes == 30
        assert [s.name for s in report.automated_steps] == ["find data"]

    def test_human_step_always_remains(self):
        p = GaugeProfile(
            data_access=AccessTier.QUERY, data_schema=SchemaTier.SELF_DESCRIBING
        )
        report = score(p, scenario())
        assert report.manual_minutes == 10
        assert report.automation_fraction == pytest.approx(0.9)

    def test_accepts_component(self):
        c = WorkflowComponent(name="c")
        report = score(c, scenario())
        assert report.component_name == "c"
        assert report.manual_minutes == 100

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            score("not-a-component", scenario())


class TestAutomationGain:
    def test_gain_equals_removed_minutes(self):
        before = GaugeProfile.baseline()
        after = before.with_tier(Gauge.DATA_SCHEMA, SchemaTier.SELF_DESCRIBING)
        assert automation_gain(before, after, scenario()) == 60

    def test_no_gain_for_irrelevant_raise(self):
        before = GaugeProfile.baseline()
        after = before.with_tier(
            Gauge.SOFTWARE_CUSTOMIZABILITY, CustomizabilityTier.MODELED
        )
        assert automation_gain(before, after, scenario()) == 0


class TestBuiltinScenarios:
    def test_four_scenarios(self):
        scenarios = builtin_scenarios()
        assert set(scenarios) == {
            "new-dataset",
            "new-machine",
            "new-collaborator",
            "new-runtime",
        }

    def test_all_steps_have_positive_minutes(self):
        for s in builtin_scenarios().values():
            assert all(step.minutes > 0 for step in s.steps)
            assert s.total_minutes() > 0

    def test_top_profile_automates_every_builtin_step(self):
        """Every builtin step must be automatable at some defined tier —
        otherwise the scenario encodes an unreachable tier value."""
        from repro.gauges.levels import TIER_TYPES, max_tier

        top = GaugeProfile(
            **{
                GaugeProfile._FIELD_BY_GAUGE[g]: TIER_TYPES[g](max_tier(g))
                for g in Gauge
            }
        )
        for s in builtin_scenarios().values():
            report = score(top, s)
            assert report.manual_minutes == 0, (s.name, report.remaining_steps)
