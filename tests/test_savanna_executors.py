"""Tests for the simulated executors: pilot, static sets, campaign runner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.job import Task, TaskState
from repro.savanna import PilotExecutor, StaticSetExecutor, tasks_from_manifest
from repro.savanna.executor import CampaignResult

from conftest import make_cluster


def tasks_of(durations, nodes=1):
    return [Task(name=f"t{i}", duration=float(d), nodes=nodes) for i, d in enumerate(durations)]


class TestPilot:
    def test_all_tasks_complete_within_walltime(self):
        cluster = make_cluster(nodes=2)
        result = PilotExecutor(cluster).run(tasks_of([10, 10, 10, 10]), nodes=2, walltime=100.0)
        assert len(result.completed) == 4
        assert result.all_done

    def test_nodes_reused_as_they_free(self):
        """4 tasks x 10s on 2 nodes must take ~20s of busy span, not 40."""
        cluster = make_cluster(nodes=2)
        result = PilotExecutor(cluster).run(tasks_of([10, 10, 10, 10]), nodes=2, walltime=100.0)
        outcome = result.outcomes[0]
        span = outcome.last_activity() - outcome.allocation.start
        assert span == pytest.approx(20.0)

    def test_straggler_does_not_block_short_tasks(self):
        cluster = make_cluster(nodes=2)
        result = PilotExecutor(cluster).run(
            tasks_of([90, 5, 5, 5, 5]), nodes=2, walltime=200.0
        )
        outcome = result.outcomes[0]
        # all shorts fit alongside the straggler on the second node
        span = outcome.last_activity() - outcome.allocation.start
        assert span == pytest.approx(90.0)

    def test_walltime_kill_marks_tasks_killed(self):
        cluster = make_cluster(nodes=1)
        result = PilotExecutor(cluster).run(tasks_of([50, 100]), nodes=1, walltime=60.0)
        outcome = result.outcomes[0]
        assert outcome.completed_count == 1
        assert len(outcome.killed) == 1
        assert result.tasks[1].state is TaskState.KILLED

    def test_resume_completes_killed_tasks(self):
        cluster = make_cluster(nodes=1)
        result = PilotExecutor(cluster).run(
            tasks_of([50, 50, 50]), nodes=1, walltime=60.0, max_allocations=5
        )
        assert result.all_done
        assert len(result.outcomes) == 3  # one completion per 60s window

    def test_multinode_task_placement(self):
        cluster = make_cluster(nodes=4)
        result = PilotExecutor(cluster).run(
            tasks_of([10, 10], nodes=2), nodes=4, walltime=100.0
        )
        outcome = result.outcomes[0]
        assert outcome.completed_count == 2
        # both ran concurrently across 4 nodes
        assert outcome.last_activity() - outcome.allocation.start == pytest.approx(10.0)

    def test_failed_task_requeued_and_retried(self):
        cluster = make_cluster(nodes=1, mttf=30.0, seed=5)  # very failure-prone
        tasks = tasks_of([5.0] * 10)
        result = PilotExecutor(cluster, max_retries=5).run(tasks, nodes=1, walltime=10000.0)
        outcome = result.outcomes[0]
        # with retries, most tasks eventually finish; attempts > tasks
        assert len(outcome.attempts) > 10

    def test_no_retry_mode_records_failures(self):
        cluster = make_cluster(nodes=1, mttf=10.0, seed=5)
        tasks = tasks_of([30.0] * 5)
        result = PilotExecutor(cluster, retry_failed=False).run(
            tasks, nodes=1, walltime=10000.0
        )
        outcome = result.outcomes[0]
        assert outcome.failed  # at such a low MTTF something must fail


class TestStaticSets:
    def test_barrier_idles_nodes(self):
        """Set {10, 100} then {10, 10}: node 0 idles 90s at the barrier."""
        cluster = make_cluster(nodes=2)
        result = StaticSetExecutor(cluster).run(
            tasks_of([10, 100, 10, 10]), nodes=2, walltime=300.0
        )
        outcome = result.outcomes[0]
        span = outcome.last_activity() - outcome.allocation.start
        assert span == pytest.approx(110.0)
        trace = outcome.trace(end=outcome.last_activity())
        assert trace.utilization() < 0.65

    def test_pilot_beats_static_on_same_workload(self):
        durations = list(np.random.default_rng(3).lognormal(3.0, 1.2, size=40))
        static = StaticSetExecutor(make_cluster(nodes=4)).run(
            tasks_of(durations), nodes=4, walltime=10000.0
        )
        pilot = PilotExecutor(make_cluster(nodes=4)).run(
            tasks_of(durations), nodes=4, walltime=10000.0
        )
        assert pilot.makespan() < static.makespan()

    def test_set_gap_delays_next_set(self):
        cluster = make_cluster(nodes=2)
        result = StaticSetExecutor(cluster, set_gap=25.0).run(
            tasks_of([10, 10, 10, 10]), nodes=2, walltime=300.0
        )
        outcome = result.outcomes[0]
        span = outcome.last_activity() - outcome.allocation.start
        assert span == pytest.approx(10 + 25 + 10)

    def test_failures_not_retried_within_allocation(self):
        cluster = make_cluster(nodes=1, mttf=20.0, seed=5)
        result = StaticSetExecutor(cluster).run(
            tasks_of([50.0] * 4), nodes=1, walltime=10000.0
        )
        outcome = result.outcomes[0]
        # each task attempted exactly once in the allocation
        assert len(outcome.attempts) == 4
        assert outcome.failed

    def test_oversized_task_rejected(self):
        cluster = make_cluster(nodes=2)
        with pytest.raises(ValueError, match="needs 3 nodes"):
            StaticSetExecutor(cluster).run(
                tasks_of([10], nodes=3), nodes=2, walltime=100.0
            )

    def test_sets_partition_respects_node_width(self):
        from repro.savanna._alloc import StaticSetRun

        tasks = tasks_of([1] * 7, nodes=2)
        sets = StaticSetRun._partition(tasks, 5)
        for batch in sets:
            assert sum(t.nodes for t in batch) <= 5
        assert sum(len(s) for s in sets) == 7


class TestRunner:
    def test_max_allocations_respected(self):
        cluster = make_cluster(nodes=1)
        result = PilotExecutor(cluster).run(
            tasks_of([100.0] * 50), nodes=1, walltime=150.0, max_allocations=3
        )
        assert len(result.outcomes) == 3
        assert not result.all_done

    def test_inter_allocation_gap_spaces_submissions(self):
        cluster = make_cluster(nodes=1, queue_wait=0.0)
        result = PilotExecutor(cluster).run(
            tasks_of([50.0, 50.0]), nodes=1, walltime=60.0,
            max_allocations=2, inter_allocation_gap=500.0,
        )
        starts = [o.allocation.start for o in result.outcomes]
        assert starts[1] - starts[0] >= 500.0

    def test_end_early_releases_allocation(self):
        cluster = make_cluster(nodes=1, queue_wait=0.0)
        result = PilotExecutor(cluster).run(
            tasks_of([10.0]), nodes=1, walltime=10000.0
        )
        # simulation clock should end near 10s, not at walltime
        assert cluster.now < 100.0

    def test_no_end_early_waits_for_walltime(self):
        cluster = make_cluster(nodes=1, queue_wait=0.0)
        PilotExecutor(cluster).run(
            tasks_of([10.0]), nodes=1, walltime=500.0, end_early=False
        )
        assert cluster.now == pytest.approx(500.0)

    def test_empty_task_list_no_allocations(self):
        cluster = make_cluster(nodes=1)
        result = PilotExecutor(cluster).run([], nodes=1, walltime=100.0)
        assert result.outcomes == []
        assert result.all_done

    def test_mean_completed_per_allocation(self):
        result = CampaignResult(tasks=[])
        assert result.mean_completed_per_allocation() == 0.0


class TestTasksFromManifest:
    def make_manifest(self):
        from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter

        camp = Campaign("c", app=AppSpec("a", nodes_per_run=2))
        sg = camp.sweep_group("g", nodes=4, walltime=100.0)
        sg.add(Sweep([SweepParameter("x", [1, 2, 3])]))
        return camp.to_manifest()

    def test_durations_from_model(self):
        tasks = tasks_from_manifest(self.make_manifest(), lambda p: 10.0 * p["x"])
        assert [t.duration for t in tasks] == [10.0, 20.0, 30.0]
        assert all(t.nodes == 2 for t in tasks)
        assert tasks[0].payload == {"x": 1}

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration model returned"):
            tasks_from_manifest(self.make_manifest(), lambda p: 0.0)


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=5),
    st.sampled_from(["pilot", "static"]),
)
def test_task_conservation_property(durations, nodes, kind):
    """Property: after any campaign, every task is DONE, FAILED, KILLED, or
    PENDING, and completed+others == total (nothing lost or duplicated)."""
    cluster = make_cluster(nodes=nodes, mttf=5000.0, seed=1)
    tasks = tasks_of(durations)
    executor = (
        PilotExecutor(cluster) if kind == "pilot" else StaticSetExecutor(cluster)
    )
    result = executor.run(tasks, nodes=nodes, walltime=300.0, max_allocations=2)
    states = [t.state for t in result.tasks]
    assert len(states) == len(durations)
    allowed = {TaskState.DONE, TaskState.FAILED, TaskState.KILLED, TaskState.PENDING}
    assert set(states) <= allowed
    # completed list consistent with task states
    assert len(result.completed) == sum(1 for s in states if s is TaskState.DONE)
    # attempts never overlap on a node within an allocation
    for outcome in result.outcomes:
        by_node = {}
        for attempt in outcome.attempts:
            if attempt.end is None:
                continue
            for node_idx in attempt.node_indices:
                by_node.setdefault(node_idx, []).append((attempt.start, attempt.end))
        for intervals in by_node.values():
            intervals.sort()
            for (_s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-9
