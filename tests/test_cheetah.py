"""Tests for Cheetah composition: parameters, sweeps, campaigns, manifest."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cheetah.campaign import AppSpec, Campaign, Sweep, SweepGroup
from repro.cheetah.manifest import (
    CampaignManifest,
    RunSpec,
    manifest_from_json,
    manifest_to_json,
)
from repro.cheetah.parameters import (
    DerivedParameter,
    LinspaceParameter,
    ParameterError,
    RangeParameter,
    SweepParameter,
)


class TestParameters:
    def test_sweep_parameter_values(self):
        p = SweepParameter("x", [1, 2, 3])
        assert p.values == (1, 2, 3)
        assert len(p) == 3

    def test_empty_values_rejected(self):
        with pytest.raises(ParameterError):
            SweepParameter("x", [])

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            SweepParameter("", [1])

    def test_range_parameter(self):
        assert RangeParameter("i", 0, 6, 2).values == (0, 2, 4)

    def test_range_validation(self):
        with pytest.raises(ParameterError):
            RangeParameter("i", 5, 5)
        with pytest.raises(ParameterError):
            RangeParameter("i", 0, 5, 0)

    def test_linspace_parameter(self):
        vals = LinspaceParameter("f", 0.0, 1.0, 3).values
        assert vals == (0.0, 0.5, 1.0)

    def test_linspace_validation(self):
        with pytest.raises(ParameterError):
            LinspaceParameter("f", 0.0, 1.0, 1)
        with pytest.raises(ParameterError):
            LinspaceParameter("f", 1.0, 0.0, 3)

    def test_derived_requires_callable(self):
        with pytest.raises(ParameterError):
            DerivedParameter("d", "not-callable")


class TestSweep:
    def test_cartesian_product_order(self):
        sweep = Sweep([SweepParameter("a", [1, 2]), SweepParameter("b", "xy")])
        configs = list(sweep.configurations())
        assert configs == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_derived_evaluated_after_swept(self):
        sweep = Sweep(
            [SweepParameter("n", [2, 3])],
            derived=[DerivedParameter("sq", lambda c: c["n"] ** 2)],
        )
        assert [c["sq"] for c in sweep.configurations()] == [4, 9]

    def test_filter_prunes(self):
        sweep = Sweep(
            [SweepParameter("n", range(10))], filter=lambda c: c["n"] % 3 == 0
        )
        assert len(sweep) == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            Sweep([SweepParameter("a", [1]), SweepParameter("a", [2])])

    def test_no_parameters_rejected(self):
        with pytest.raises(ParameterError):
            Sweep([])

    def test_wrong_types_rejected(self):
        with pytest.raises(ParameterError):
            Sweep(["not-a-parameter"])

    def test_empty_sweep_name_rejected(self):
        with pytest.raises(ParameterError, match="non-empty"):
            Sweep([SweepParameter("a", [1])], name="")
        with pytest.raises(ParameterError, match="non-empty"):
            Sweep([SweepParameter("a", [1])], name="   ")

    def test_non_identifier_parameter_names_rejected(self):
        with pytest.raises(ParameterError, match="valid identifiers"):
            Sweep([SweepParameter("num nodes", [1])])
        with pytest.raises(ParameterError, match="valid identifiers"):
            Sweep(
                [SweepParameter("a", [1])],
                derived=[DerivedParameter("a-b", lambda c: c["a"])],
            )

    def test_derived_name_colliding_with_swept_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            Sweep(
                [SweepParameter("a", [1])],
                derived=[DerivedParameter("a", lambda c: 2)],
            )


class TestSweepGroup:
    def test_len_sums_sweeps(self):
        g = SweepGroup("g", nodes=4, walltime=100.0)
        g.add(Sweep([SweepParameter("a", [1, 2])]))
        g.add(Sweep([SweepParameter("b", [1, 2, 3])]))
        assert len(g) == 5

    def test_invalid_resources_rejected(self):
        with pytest.raises(ValueError):
            SweepGroup("g", nodes=0, walltime=100.0)
        with pytest.raises(ValueError):
            SweepGroup("g", nodes=1, walltime=0.0)


class TestCampaign:
    def make(self):
        camp = Campaign("study", app=AppSpec("app", nodes_per_run=2))
        sg = camp.sweep_group("g1", nodes=8, walltime=3600.0)
        sg.add(Sweep([SweepParameter("x", [10, 20])]))
        return camp

    def test_total_runs(self):
        assert self.make().total_runs() == 2

    def test_duplicate_group_rejected(self):
        camp = self.make()
        with pytest.raises(ValueError, match="duplicate sweep group"):
            camp.sweep_group("g1", nodes=1, walltime=1.0)

    def test_manifest_run_ids_and_nodes(self):
        man = self.make().to_manifest()
        assert [r.run_id for r in man.runs] == ["g1/run-0000", "g1/run-0001"]
        assert all(r.nodes == 2 for r in man.runs)
        assert man.group_meta("g1")["runs"] == 2

    def test_manifest_group_lookup(self):
        man = self.make().to_manifest()
        assert len(man.runs_in_group("g1")) == 2
        with pytest.raises(KeyError):
            man.group_meta("nope")

    def test_context_lists_swept_parameters(self):
        ctx = self.make().context()
        assert ctx.swept_parameters == ("x",)
        assert ctx.name == "study"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Campaign("", app=AppSpec("a"))


class TestManifestJson:
    def test_roundtrip(self):
        man = TestCampaign().make().to_manifest()
        assert manifest_from_json(manifest_to_json(man)) == man

    def test_rejects_wrong_schema_version(self):
        man = TestCampaign().make().to_manifest()
        doc = json.loads(manifest_to_json(man))
        doc["schema_version"] = "0.9"
        with pytest.raises(ValueError, match="unsupported manifest schema version"):
            manifest_from_json(json.dumps(doc))

    def test_duplicate_run_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate run_ids"):
            CampaignManifest(
                campaign="c",
                app="a",
                runs=(
                    RunSpec("r1", "g", {}),
                    RunSpec("r1", "g", {}),
                ),
            )

    def test_runspec_validation(self):
        with pytest.raises(ValueError):
            RunSpec("", "g", {})
        with pytest.raises(ValueError):
            RunSpec("r", "g", {}, nodes=0)


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20),
    st.integers(min_value=1, max_value=4),
)
def test_manifest_roundtrip_property(values, nodes_per_run):
    """Property: campaign -> manifest -> json -> manifest is identity."""
    camp = Campaign("prop", app=AppSpec("app", nodes_per_run=nodes_per_run))
    sg = camp.sweep_group("g", nodes=4, walltime=60.0)
    sg.add(Sweep([SweepParameter("v", values)]))
    man = camp.to_manifest()
    assert manifest_from_json(manifest_to_json(man)) == man
    assert len(man) == len(values)
