"""Bit-exactness of the vectorized simulator core (`repro.savanna._vector`).

Every scenario here runs twice — once with ``REPRO_SIMCORE=event``
(the per-event reference engine in ``repro.savanna._alloc``) and once
with the vectorized default — and asserts the runs are
*indistinguishable*: identical task states and attempt records,
identical outcome lists in identical order, identical node busy
intervals, an identical failure-RNG stream position, and (when a
recorder is attached) a byte-identical Chrome trace.

Two process-global counters must be normalized before comparing runs
that execute in the same process:

- bus ``pid`` values come from a process-wide counter, so every new
  cluster gets a fresh pid — forced to 0;
- ``Task.task_id`` comes from a process-wide ``itertools.count`` — ids
  are rebased to the smallest id in the run's own task list.

Everything else must match exactly, with no tolerance.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.cluster.cluster import ClusterSpec, SimulatedCluster
from repro.cluster.job import Task
from repro.observability.recorder import TraceRecorder
from repro.resilience.policy import (
    ExponentialBackoffPolicy,
    FixedDelayPolicy,
    RetryPolicy,
)
from repro.savanna import PilotExecutor, StaticSetExecutor

# ---------------------------------------------------------------------------
# scenario definitions


class _PerTaskTimeout(RetryPolicy):
    """Custom ``timeout_for`` override: exercises the non-hoistable path."""

    def timeout_for(self, task):
        return 450.0 if task.payload.get("capped") else None


def _tasks(n: int, seed: int, mean: float = 600.0, sigma: float = 0.6, cap_half=False):
    rng = np.random.default_rng(seed)
    durations = rng.lognormal(mean=math.log(mean), sigma=sigma, size=n)
    return [
        Task(
            name=f"t{i:03d}",
            duration=float(d),
            payload={"capped": True} if cap_half and i % 2 else {},
        )
        for i, d in enumerate(durations)
    ]


def _spec(nodes, mttf, speed_sigma=0.0):
    return ClusterSpec(
        nodes=nodes,
        queue_sigma=0.0,
        queue_median_wait=120.0,
        node_mttf=mttf,
        node_speed_sigma=speed_sigma,
    )


SCENARIOS = {
    # name: (spec, executor factory, task factory, run kwargs)
    "pilot-fig6": (
        _spec(8, 8000.0),
        lambda c: PilotExecutor(c),
        lambda: _tasks(40, 3),
        {"nodes": 8, "walltime": 40000.0},
    ),
    "static-fig6": (
        _spec(8, 8000.0),
        lambda c: StaticSetExecutor(c, set_gap=60.0),
        lambda: _tasks(40, 3),
        {"nodes": 8, "walltime": 40000.0},
    ),
    "pilot-backoff-budget": (
        _spec(6, 3000.0),
        lambda c: PilotExecutor(
            c,
            retry_policy=FixedDelayPolicy(
                max_retries=3, delay_seconds=250.0, allocation_budget=4
            ),
        ),
        lambda: _tasks(30, 11),
        {"nodes": 6, "walltime": 60000.0},
    ),
    "static-exp-backoff": (
        _spec(6, 3000.0),
        lambda c: StaticSetExecutor(
            c,
            set_gap=30.0,
            retry_policy=ExponentialBackoffPolicy(
                max_retries=2, base=45.0, jitter=0.5, seed=7
            ),
        ),
        lambda: _tasks(30, 11),
        {"nodes": 6, "walltime": 60000.0},
    ),
    "pilot-walltime-kill": (
        _spec(8, 4000.0),
        lambda c: PilotExecutor(
            c, retry_policy=FixedDelayPolicy(max_retries=2, delay_seconds=400.0)
        ),
        lambda: _tasks(40, 5),
        {"nodes": 8, "walltime": 1500.0},
    ),
    "static-kill-no-failures": (
        _spec(8, None),
        lambda c: StaticSetExecutor(c, set_gap=60.0),
        lambda: _tasks(40, 5),
        {"nodes": 8, "walltime": 1500.0},
    ),
    "pilot-per-task-timeout": (
        _spec(6, 9000.0),
        lambda c: PilotExecutor(c, retry_policy=_PerTaskTimeout(max_retries=1)),
        lambda: _tasks(30, 9, cap_half=True),
        {"nodes": 6, "walltime": 50000.0},
    ),
    "pilot-heterogeneous": (
        _spec(8, 6000.0, speed_sigma=0.3),
        lambda c: PilotExecutor(c),
        lambda: _tasks(40, 17),
        {"nodes": 8, "walltime": 50000.0},
    ),
    "static-multi-alloc-inplace": (
        _spec(6, 5000.0),
        lambda c: StaticSetExecutor(
            c, set_gap=45.0, retry_policy=FixedDelayPolicy(max_retries=2)
        ),
        lambda: _tasks(36, 23),
        {"nodes": 6, "walltime": 2500.0, "max_allocations": 3},
    ),
    "pilot-const-timeout": (
        _spec(6, None),
        lambda c: PilotExecutor(
            c, retry_policy=RetryPolicy(max_retries=1, task_timeout=700.0)
        ),
        lambda: _tasks(30, 29),
        {"nodes": 6, "walltime": 50000.0},
    ),
}

SEED = 21


# ---------------------------------------------------------------------------
# run + snapshot machinery


def _run(name: str, mode: str, traced: bool, monkeypatch):
    """Execute one scenario under the given engine; snapshot everything."""
    if mode == "event":
        monkeypatch.setenv("REPRO_SIMCORE", "event")
    else:
        monkeypatch.delenv("REPRO_SIMCORE", raising=False)
    spec, make_executor, make_tasks, run_kwargs = SCENARIOS[name]
    cluster = SimulatedCluster(spec, seed=SEED)
    recorder = TraceRecorder().attach(cluster.bus) if traced else None
    tasks = make_tasks()
    result = make_executor(cluster).run(tasks, **run_kwargs)
    if recorder is not None:
        recorder.detach()
    return _snapshot(cluster, tasks, result, recorder)


def _snapshot(cluster, tasks, result, recorder):
    base = min(t.task_id for t in tasks)
    snap = {
        "tasks": [
            (
                t.name,
                t.state.value,
                [
                    (a.start, a.end, a.outcome.value, tuple(a.node_indices))
                    for a in t.attempts
                ],
            )
            for t in tasks
        ],
        "outcomes": [
            {
                "attempts": [
                    (a.task.task_id - base, a.start, a.end, a.outcome.value)
                    for a in o.attempts
                ],
                "completed": [t.task_id - base for t in o.completed],
                "failed": [t.task_id - base for t in o.failed],
                "killed": [t.task_id - base for t in o.killed],
            }
            for o in result.outcomes
        ],
        "intervals": [list(n.busy_intervals) for n in cluster.pool.nodes],
        "rng": cluster.failures._rng.bit_generator.state,
        "now": cluster.sim.now,
    }
    if recorder is not None:
        snap["trace"] = _normalized_trace(recorder, base)
    return snap


def _normalized_trace(recorder, base):
    out = []
    for entry in recorder.to_chrome_trace():
        entry = dict(entry)
        entry["pid"] = 0
        args = dict(entry.get("args") or {})
        if "task_id" in args:
            args["task_id"] -= base
        entry["args"] = args
        out.append(entry)
    # Serialize: catches dict-ordering and float-representation drift too.
    return json.dumps(out)


# ---------------------------------------------------------------------------
# tests


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_untraced_runs_are_bit_identical(name, monkeypatch):
    """Fast (unobserved) vectorized loops match the event engine exactly."""
    assert _run(name, "vector", False, monkeypatch) == _run(
        name, "event", False, monkeypatch
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_traced_runs_produce_identical_chrome_traces(name, monkeypatch):
    """Observed vectorized runs emit byte-identical event streams."""
    vec = _run(name, "vector", True, monkeypatch)
    evt = _run(name, "event", True, monkeypatch)
    assert vec["trace"] == evt["trace"]
    assert vec == evt


def test_scenarios_cover_interesting_behavior(monkeypatch):
    """Meta-test: the suite actually exercises retries, kills, timeouts."""
    seen = {"failed": 0, "killed": 0, "retries": 0, "multi": 0}
    for name in SCENARIOS:
        snap = _run(name, "vector", False, monkeypatch)
        for o in snap["outcomes"]:
            seen["failed"] += len(o["failed"])
            seen["killed"] += len(o["killed"])
        seen["retries"] += sum(len(attempts) > 1 for _, _, attempts in snap["tasks"])
        seen["multi"] += len(snap["outcomes"]) > 1
    assert all(seen.values()), f"degenerate scenario coverage: {seen}"
