"""Tests for data-semantics descriptors."""

import pytest

from repro.metadata.semantics import (
    ConsumptionPattern,
    DataSemanticsDescriptor,
    ElementRole,
    FormatLineage,
    Ordering,
)


class TestTiers:
    def test_empty_is_tier_zero(self):
        assert DataSemanticsDescriptor().tier_index() == 0

    def test_consumption_reaches_data_fusion(self):
        d = DataSemanticsDescriptor(consumption=ConsumptionPattern.WINDOW)
        assert d.tier_index() == 1

    def test_ordering_alone_reaches_data_fusion(self):
        d = DataSemanticsDescriptor(ordering=Ordering.ORDERED)
        assert d.tier_index() == 1

    def test_lineage_reaches_format_evolution(self):
        d = DataSemanticsDescriptor(
            ordering=Ordering.ORDERED,
            lineage=FormatLineage("fmt", ("1", "2"), "2"),
        )
        assert d.tier_index() == 2

    def test_roles_reach_dataset_semantics(self):
        d = DataSemanticsDescriptor(
            roles=(ElementRole("cancerous", "labels == 1"),)
        )
        assert d.tier_index() == 3


class TestOrderPreservation:
    def test_ordered_requires_preservation(self):
        assert DataSemanticsDescriptor(ordering=Ordering.ORDERED).requires_order_preservation()

    def test_first_precious_requires_preservation(self):
        d = DataSemanticsDescriptor(consumption=ConsumptionPattern.FIRST_PRECIOUS)
        assert d.requires_order_preservation()

    def test_unordered_elementwise_does_not(self):
        d = DataSemanticsDescriptor(
            ordering=Ordering.UNORDERED, consumption=ConsumptionPattern.ELEMENT
        )
        assert not d.requires_order_preservation()


class TestLineage:
    def test_predecessors_newest_first(self):
        lin = FormatLineage("fmt", ("1", "2", "3"), "3")
        assert lin.predecessors() == ("2", "1")

    def test_oldest_version_has_no_predecessors(self):
        lin = FormatLineage("fmt", ("1", "2"), "1")
        assert lin.predecessors() == ()

    def test_current_must_be_in_lineage(self):
        with pytest.raises(ValueError, match="not in lineage"):
            FormatLineage("fmt", ("1", "2"), "9")


class TestRoles:
    def test_role_lookup(self):
        role = ElementRole("healthy", "labels == 0")
        d = DataSemanticsDescriptor(roles=(role,))
        assert d.role_for("healthy") is role

    def test_missing_role_raises(self):
        with pytest.raises(KeyError):
            DataSemanticsDescriptor().role_for("nope")
