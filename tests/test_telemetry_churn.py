"""Property tests: TelemetrySampler counters reconcile exactly under churn.

Hypothesis generates fleets of submissions — random tenants, backends,
outcomes, task mixes — and random *interleavings* of their event
streams (each submission's own order preserved, as the service
guarantees; everything else shuffled, as concurrent workers produce).
Whatever the interleaving:

- at **every prefix** the counter algebra holds per scope::

      submitted == queued + started + cancelled_queued
      started   == active + finished + failed + cancelled_running

  (and gauges never dip negative);
- at the end, every counter **exactly** equals the count computed by
  replaying the same stream independently — the sampler loses nothing
  and double-counts nothing;
- folding the same stream event-by-event or via batch delivery is
  indistinguishable.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import EventBus
from repro.observability.live import TelemetrySampler

TENANTS = ("lab-a", "lab-b", "lab-c")
BACKENDS = ("local-threads", "local-processes")

#: (submission outcome, which lifecycle events it produces)
OUTCOMES = ("done", "failed", "cancel_queued", "cancel_running")


@st.composite
def submission_plans(draw):
    """One submission's randomized lifecycle plan."""
    return {
        "tenant": draw(st.sampled_from(TENANTS)),
        "backend": draw(st.sampled_from(BACKENDS)),
        "outcome": draw(st.sampled_from(OUTCOMES)),
        "tasks_done": draw(st.integers(min_value=0, max_value=3)),
        "tasks_failed": draw(st.integers(min_value=0, max_value=2)),
        "retries": draw(st.integers(min_value=0, max_value=2)),
        # lifecycle events after service.submitted may omit tenant/backend
        # (exercises the sampler's route map) or carry them (as the
        # service's forwarded execution events do).
        "tagged": draw(st.booleans()),
    }


def events_for(sub_id: str, plan: dict) -> list[tuple[str, str, dict]]:
    """The (name, phase, fields) sequence one plan produces, in order."""
    tag = (
        {"tenant": plan["tenant"], "backend": plan["backend"]}
        if plan["tagged"]
        else {}
    )
    base = {"submission": sub_id, **tag}
    stream = [(
        "service.submitted", "instant",
        {"submission": sub_id, "tenant": plan["tenant"],
         "backend": plan["backend"]},
    )]
    if plan["outcome"] == "cancel_queued":
        stream.append(("service.cancelled", "instant",
                       {**base, "while": "queued"}))
        return stream
    stream.append(("service.started", "instant", {**base, "queued_for": 0.5}))
    for i in range(plan["tasks_done"]):
        stream.append(("task", "end", {**base, "task": f"d{i}", "outcome": "done"}))
    for i in range(plan["tasks_failed"]):
        stream.append(("task", "end", {**base, "task": f"f{i}", "outcome": "failed"}))
    for i in range(plan["retries"]):
        stream.append(("task.retry", "instant", {**base, "task": f"f{i}"}))
    if plan["outcome"] == "cancel_running":
        stream.append(("service.cancelled", "instant",
                       {**base, "while": "running"}))
    else:
        stream.append(("service.finished", "instant",
                       {**base, "outcome": plan["outcome"], "elapsed": 2.0}))
    return stream


def interleave(streams: list[list], choices) -> list:
    """Merge per-submission streams, preserving each stream's own order.

    ``choices`` is an infinite-ish list of draw indices that picks which
    still-nonempty stream yields its next event at each step.
    """
    cursors = [0] * len(streams)
    merged = []
    step = 0
    while any(cursors[i] < len(streams[i]) for i in range(len(streams))):
        live = [i for i in range(len(streams)) if cursors[i] < len(streams[i])]
        pick = live[choices[step % len(choices)] % len(live)]
        merged.append(streams[pick][cursors[pick]])
        cursors[pick] += 1
        step += 1
    return merged


def expected_counts(merged: list) -> dict:
    """Independent replay: ground-truth terminal counters per scope."""
    routes: dict = {}
    scopes: dict = {}

    def scope(kind, name):
        return scopes.setdefault((kind, name), {
            "submitted": 0, "started": 0, "finished": 0, "failed": 0,
            "cancelled_queued": 0, "cancelled_running": 0,
            "tasks_done": 0, "tasks_failed": 0, "retries": 0,
        })

    def targets(fields):
        sub = fields.get("submission")
        tenant = fields.get("tenant")
        backend = fields.get("backend")
        if sub in routes:
            tenant = tenant or routes[sub][0]
            backend = backend or routes[sub][1]
        out = []
        if tenant:
            out.append(scope("tenant", tenant))
        if backend:
            out.append(scope("backend", backend))
        return out

    for name, phase, fields in merged:
        if name == "service.submitted":
            routes[fields["submission"]] = (fields["tenant"], fields["backend"])
            for s in targets(fields):
                s["submitted"] += 1
        elif name == "service.started":
            for s in targets(fields):
                s["started"] += 1
        elif name == "service.finished":
            key = "failed" if fields["outcome"] == "failed" else "finished"
            for s in targets(fields):
                s[key] += 1
        elif name == "service.cancelled":
            key = (
                "cancelled_running"
                if fields["while"] == "running"
                else "cancelled_queued"
            )
            for s in targets(fields):
                s[key] += 1
        elif name == "task" and phase == "end":
            key = "tasks_done" if fields["outcome"] == "done" else "tasks_failed"
            for s in targets(fields):
                s[key] += 1
        elif name == "task.retry":
            for s in targets(fields):
                s["retries"] += 1
    return scopes


def assert_invariants(status: dict) -> None:
    """The counter algebra every prefix must satisfy, per scope."""
    for table in ("tenants", "backends"):
        for name, s in status[table].items():
            label = f"{table}/{name}"
            assert s["queued"] >= 0, label
            assert s["active"] >= 0, label
            assert s["submitted"] == (
                s["queued"] + s["started"] + s["cancelled_queued"]
            ), label
            assert s["started"] == (
                s["active"] + s["finished"] + s["failed"] + s["cancelled_running"]
            ), label


churn = st.tuples(
    st.lists(submission_plans(), min_size=1, max_size=8),
    st.lists(st.integers(min_value=0, max_value=97), min_size=1, max_size=64),
)


class TestSamplerReconciliation:
    @given(churn)
    @settings(max_examples=80, deadline=None)
    def test_counters_reconcile_exactly_across_interleavings(self, case):
        plans, choices = case
        streams = [
            events_for(f"sub-{i:04d}", plan) for i, plan in enumerate(plans)
        ]
        merged = interleave(streams, choices)

        bus = EventBus()
        sampler = TelemetrySampler(capacity=4).attach(bus)
        for name, phase, fields in merged:
            bus.emit(name, phase=phase, **fields)
            assert_invariants(sampler.status())  # holds at every prefix

        # terminal: exact agreement with the independent replay
        status = sampler.status()
        truth = expected_counts(merged)
        for (kind, name), want in truth.items():
            table = status["tenants" if kind == "tenant" else "backends"]
            got = table[name]
            for counter, value in want.items():
                assert got[counter] == value, (kind, name, counter)
        # nothing left in flight: every submission reached a terminal state
        assert status["service"]["queued"] == 0
        assert status["service"]["active"] == 0
        assert status["service"]["running"] == 0
        assert status["events"] == len(merged)

    @given(churn)
    @settings(max_examples=30, deadline=None)
    def test_batch_and_single_delivery_agree(self, case):
        plans, choices = case
        streams = [
            events_for(f"sub-{i:04d}", plan) for i, plan in enumerate(plans)
        ]
        merged = interleave(streams, choices)

        single_bus = EventBus()
        single = TelemetrySampler().attach(single_bus)
        for name, phase, fields in merged:
            single_bus.emit(name, phase=phase, **fields)

        batch_bus = EventBus()
        batched = TelemetrySampler().attach(batch_bus)
        batch_bus.publish_batch(
            [(name, phase, None, fields) for name, phase, fields in merged]
        )

        a, b = single.status(), batched.status()
        assert a["tenants"] == b["tenants"]
        assert a["backends"] == b["backends"]
        assert a["events"] == b["events"] == len(merged)
