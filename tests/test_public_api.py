"""Public-API completeness guard.

Every name a package advertises in ``__all__`` must resolve, and the
top-level package must re-export every subpackage.  Catches the classic
refactoring failure where a symbol moves and the export list silently
rots.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.gauges",
    "repro.metadata",
    "repro.skel",
    "repro.cheetah",
    "repro.savanna",
    "repro.cluster",
    "repro.resilience",
    "repro.store",
    "repro.dataflow",
    "repro.experiments",
    "repro.apps.gwas",
    "repro.apps.irf",
    "repro.apps.simulation",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_no_duplicate_exports(package_name):
    package = importlib.import_module(package_name)
    assert len(package.__all__) == len(set(package.__all__))


def test_top_level_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_every_public_module_has_docstring():
    """Every module in the package carries a module docstring — the
    deliverable says documentation on every public item."""
    import pkgutil

    import repro

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_public_classes_have_docstrings():
    """Every class exported via a package __all__ carries a docstring."""
    missing = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                missing.append(f"{package_name}.{name}")
    assert not missing, f"classes without docstrings: {missing}"
