"""Tests for checkpoint policies, middleware, runs, and restart accounting."""

import pytest

from repro.apps.simulation.checkpoint import (
    CheckpointMiddleware,
    CheckpointStats,
    FixedIntervalPolicy,
    HybridPolicy,
    OverheadBudgetPolicy,
)
from repro.apps.simulation.restart import expected_lost_work, lost_work_on_failure
from repro.apps.simulation.run import (
    CheckpointedRun,
    RunConfig,
    overhead_sweep,
    variation_study,
)
from repro.cluster.filesystem import ParallelFilesystem


class TestStats:
    def test_overhead_fraction(self):
        stats = CheckpointStats(compute_seconds=90.0, io_seconds=10.0)
        assert stats.overhead_fraction() == pytest.approx(0.1)

    def test_projected_overhead(self):
        stats = CheckpointStats(compute_seconds=90.0, io_seconds=0.0)
        assert stats.projected_overhead(10.0) == pytest.approx(0.1)

    def test_zero_time_edge(self):
        stats = CheckpointStats()
        assert stats.overhead_fraction() == 0.0
        assert stats.projected_overhead(0.0) == 1.0


class TestPolicies:
    def test_fixed_interval(self):
        p = FixedIntervalPolicy(5)
        decisions = [
            p.should_checkpoint(CheckpointStats(timestep=t), 1.0) for t in range(1, 11)
        ]
        assert decisions == [False] * 4 + [True] + [False] * 4 + [True]

    def test_overhead_budget_blocks_over_budget_write(self):
        p = OverheadBudgetPolicy(0.10)
        stats = CheckpointStats(compute_seconds=50.0, io_seconds=0.0)
        assert not p.should_checkpoint(stats, projected_write=10.0)  # 10/60 > 10%
        stats2 = CheckpointStats(compute_seconds=200.0, io_seconds=0.0)
        assert p.should_checkpoint(stats2, projected_write=10.0)  # 10/210 < 10%

    def test_hybrid_forces_after_gap(self):
        p = HybridPolicy(0.01, max_gap=3)
        stats = CheckpointStats(compute_seconds=10.0, steps_since_checkpoint=3)
        assert p.should_checkpoint(stats, projected_write=100.0)

    def test_hybrid_defers_within_gap(self):
        p = HybridPolicy(0.01, max_gap=3)
        stats = CheckpointStats(compute_seconds=10.0, steps_since_checkpoint=1)
        assert not p.should_checkpoint(stats, projected_write=100.0)

    def test_describe_strings(self):
        assert FixedIntervalPolicy(5).describe() == "fixed-interval(5)"
        assert OverheadBudgetPolicy(0.1).describe() == "overhead-budget(10%)"
        assert "gap<=4" in HybridPolicy(0.1, 4).describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedIntervalPolicy(0)
        with pytest.raises(ValueError):
            OverheadBudgetPolicy(1.5)
        with pytest.raises(ValueError):
            HybridPolicy(0.1, 0)


class TestMiddleware:
    def make(self, policy, bandwidth=1e9):
        fs = ParallelFilesystem(peak_bandwidth=bandwidth, load_model=None)
        return CheckpointMiddleware(fs, policy, checkpoint_bytes=int(1e9))

    def test_write_updates_accounting(self):
        mw = self.make(FixedIntervalPolicy(1))
        io = mw.end_of_timestep(10.0, now=10.0)
        assert io == pytest.approx(1.0)
        assert mw.stats.checkpoints_written == 1
        assert mw.stats.io_seconds == pytest.approx(1.0)
        assert mw.stats.steps_since_checkpoint == 0

    def test_skipped_write_costs_nothing(self):
        mw = self.make(FixedIntervalPolicy(10))
        io = mw.end_of_timestep(10.0, now=10.0)
        assert io == 0.0
        assert mw.stats.checkpoints_written == 0
        assert mw.stats.steps_since_checkpoint == 1

    def test_projection_uses_last_observed_write(self):
        mw = self.make(FixedIntervalPolicy(1))
        mw.end_of_timestep(10.0, now=10.0)
        assert mw._estimate_write(now=20.0) == pytest.approx(1.0)

    def test_first_write_estimate_from_peak(self):
        mw = self.make(FixedIntervalPolicy(1))
        assert mw._estimate_write(now=0.0) == pytest.approx(1.0)

    def test_write_times_log(self):
        mw = self.make(FixedIntervalPolicy(2))
        for t in range(1, 5):
            mw.end_of_timestep(10.0, now=10.0 * t)
        assert [ts for ts, _s in mw.write_times] == [2, 4]


class TestCheckpointedRun:
    def test_report_consistency(self):
        config = RunConfig(timesteps=20, grid_n=16)
        report = CheckpointedRun(config, OverheadBudgetPolicy(0.2), seed=1).execute()
        assert len(report.steps) == 20
        assert report.checkpoints_written == len(report.checkpoint_timesteps)
        assert report.checkpoints_written == sum(s.wrote_checkpoint for s in report.steps)
        assert report.total_seconds == pytest.approx(
            report.compute_seconds + report.io_seconds
        )

    def test_achieved_overhead_near_budget(self):
        config = RunConfig(timesteps=50, grid_n=16)
        report = CheckpointedRun(config, OverheadBudgetPolicy(0.10), seed=3).execute()
        assert report.overhead_fraction <= 0.15

    def test_all_writes_within_timestep_range(self):
        config = RunConfig(timesteps=30, grid_n=16)
        report = CheckpointedRun(config, OverheadBudgetPolicy(0.3), seed=2).execute()
        assert all(1 <= t <= 30 for t in report.checkpoint_timesteps)

    def test_deterministic_per_seed(self):
        config = RunConfig(timesteps=25, grid_n=16)
        a = CheckpointedRun(config, OverheadBudgetPolicy(0.1), seed=9).execute()
        b = CheckpointedRun(config, OverheadBudgetPolicy(0.1), seed=9).execute()
        assert a.checkpoint_timesteps == b.checkpoint_timesteps

    def test_fixed_interval_counts(self):
        config = RunConfig(timesteps=50, grid_n=16)
        report = CheckpointedRun(config, FixedIntervalPolicy(10), seed=1).execute()
        assert report.checkpoints_written == 5


class TestSweeps:
    def test_overhead_sweep_monotone(self):
        config = RunConfig(timesteps=50, grid_n=16)
        series = overhead_sweep([0.02, 0.05, 0.1, 0.2, 0.4], config=config, seed=7)
        counts = [n for _o, n in series]
        assert counts == sorted(counts)
        assert counts[-1] <= 50

    def test_higher_budget_never_fewer_checkpoints(self):
        config = RunConfig(timesteps=50, grid_n=16)
        series = overhead_sweep([0.05, 0.5], config=config, seed=7)
        assert series[1][1] >= series[0][1]

    def test_variation_study_produces_spread(self):
        config = RunConfig(timesteps=50, grid_n=16)
        reports = variation_study(6, overhead=0.10, config=config, seed=11)
        counts = [r.checkpoints_written for r in reports]
        assert len(reports) == 6
        assert max(counts) != min(counts)  # run-to-run variation exists

    def test_variation_without_intensity_changes(self):
        config = RunConfig(timesteps=30, grid_n=16)
        reports = variation_study(
            4, overhead=0.10, config=config, seed=11, vary_intensity=False
        )
        assert all(r.config.compute_intensity == 1.0 for r in reports)


class TestRestartAccounting:
    def test_lost_work_to_last_checkpoint(self):
        assert lost_work_on_failure([10, 20, 30], failure_timestep=25) == 5

    def test_no_prior_checkpoint_loses_everything(self):
        assert lost_work_on_failure([30], failure_timestep=20) == 20

    def test_failure_exactly_at_checkpoint(self):
        assert lost_work_on_failure([10], failure_timestep=10) == 0

    def test_expected_lost_work_uniform(self):
        # checkpoints every 10 of 30 steps: mean loss = mean(0..9) = 4.5
        val = expected_lost_work([10, 20, 30], total_timesteps=30)
        assert val == pytest.approx(4.5)

    def test_more_checkpoints_less_expected_loss(self):
        sparse = expected_lost_work([25], 50)
        dense = expected_lost_work([10, 20, 30, 40, 50], 50)
        assert dense < sparse

    def test_overhead_budget_reduces_lost_work_vs_too_sparse(self):
        """End to end: the overhead policy's extra checkpoints buy strictly
        less expected lost work than a miserly fixed interval."""
        config = RunConfig(timesteps=50, grid_n=16)
        budget = CheckpointedRun(config, OverheadBudgetPolicy(0.3), seed=5).execute()
        sparse = CheckpointedRun(config, FixedIntervalPolicy(50), seed=5).execute()
        assert expected_lost_work(budget.checkpoint_timesteps, 50) < expected_lost_work(
            sparse.checkpoint_timesteps, 50
        )
