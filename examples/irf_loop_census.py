#!/usr/bin/env python3
"""iRF-LOOP on census-like data (§II-B / §V-D / Figures 6-7).

Part 1 runs a *real* iRF-LOOP: a Cheetah campaign over every feature of a
small census-like matrix, executed by the LocalExecutor (genuine forest
fits), assembled into the all-to-all network and scored against the
planted ground truth.

Part 2 runs the *scale* story on the simulated cluster: the same campaign
shape at 400 features under the original set-synchronized workflow vs the
Cheetah-Savanna dynamic pilot.

Run:  python examples/irf_loop_census.py
"""

import numpy as np

from repro.apps.irf import census_like, duration_model, irf_loop, precision_at_k
from repro.apps.irf.network import network_from_adjacency
from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep
from repro.cluster import ClusterSpec, SimulatedCluster
from repro.savanna import LocalExecutor, PilotExecutor, StaticSetExecutor, tasks_from_manifest


def real_irf_loop() -> None:
    print("== Part 1: real iRF-LOOP on a 16-feature census-like matrix ==")
    data = census_like(n_features=16, n_samples=240, noise=0.25, seed=7)

    # Compose the campaign: one run per target feature.
    campaign = Campaign("irf-loop-demo", app=AppSpec("irf"))
    group = campaign.sweep_group("features", nodes=4, walltime=3600.0)
    group.add(Sweep([RangeParameter("feature", 0, data.n_features)]))
    manifest = campaign.to_manifest()

    # Each run really fits an iRF for its target column.
    def fit_one(params: dict) -> np.ndarray:
        result = irf_loop(
            data.X,
            targets=[params["feature"]],
            n_iterations=2,
            n_estimators=8,
            max_depth=5,
            seed=params["feature"],
        )
        return result.adjacency[:, params["feature"]]

    results = LocalExecutor(max_workers=4).run(manifest, fit_one)
    print(f"executed {len(results)} iRF runs "
          f"({sum(r.status == 'done' for r in results.values())} succeeded)")

    # Assemble the n x n network from the per-run importance columns.
    adjacency = np.zeros((data.n_features, data.n_features))
    for run in manifest.runs:
        adjacency[:, run.parameters["feature"]] = results[run.run_id].value

    k = len(data.true_edges) // 2
    precision = precision_at_k(adjacency, data.true_edges, k=k)
    graph = network_from_adjacency(adjacency, data.feature_names, k=k)
    print(f"network: {graph.number_of_edges()} edges; precision@{k} vs "
          f"planted truth = {precision:.0%}\n")


def simulated_campaign() -> None:
    print("== Part 2: 400-feature campaign on the simulated 20-node cluster ==")
    campaign = Campaign("irf-loop-sim", app=AppSpec("irf"))
    group = campaign.sweep_group("features", nodes=20, walltime=7200.0)
    group.add(Sweep([RangeParameter("feature", 0, 400)]))
    manifest = campaign.to_manifest()

    for label, make, gap in (
        ("original (set-synchronized)", lambda c: StaticSetExecutor(c, set_gap=60.0), 3600.0),
        ("cheetah-savanna (dynamic)  ", lambda c: PilotExecutor(c), 0.0),
    ):
        cluster = SimulatedCluster(
            ClusterSpec(nodes=20, queue_sigma=0.0, queue_median_wait=120.0), seed=33
        )
        tasks = tasks_from_manifest(
            manifest, duration_model(median_seconds=360.0, sigma=1.4,
                                     max_seconds=6480.0, seed=33)
        )
        result = make(cluster).run(
            tasks, nodes=20, walltime=7200.0, max_allocations=60,
            inter_allocation_gap=gap,
        )
        print(
            f"  {label}: {result.mean_completed_per_allocation():6.1f} params/allocation, "
            f"{len(result.outcomes):3d} allocations, "
            f"campaign makespan {result.makespan() / 3600:6.1f} h"
        )


if __name__ == "__main__":
    real_irf_loop()
    simulated_campaign()
