#!/usr/bin/env python3
"""A codesign campaign with objectives and a queryable catalog (§II-C).

Sweeps checkpoint-middleware parameters (policy family x overhead budget
x compute intensity) over the simulated system, collects per-run metrics
into the campaign catalog, and answers the §II-C questions: which
configuration is best under each declared objective, what the
runtime/resilience Pareto front looks like, and which parameter actually
matters for each metric.

Run:  python examples/codesign_campaign.py
"""

from repro.apps.simulation import (
    CheckpointedRun,
    FixedIntervalPolicy,
    OverheadBudgetPolicy,
    RunConfig,
    expected_lost_work,
)
from repro.cheetah import (
    AppSpec,
    Campaign,
    CampaignCatalog,
    Direction,
    Objective,
    Sweep,
    SweepParameter,
)
from repro.savanna import LocalExecutor


def main() -> None:
    # -- 1. Compose the codesign campaign: parameters across layers. -------
    campaign = Campaign(
        "checkpoint-codesign",
        app=AppSpec("reaction-diffusion"),
        objective="trade checkpoint overhead against failure resilience",
    )
    group = campaign.sweep_group("policies", nodes=1, walltime=3600.0)
    group.add(
        Sweep(
            [
                SweepParameter("policy", ["fixed", "budget"]),
                SweepParameter("knob", [2, 5, 10, 20]),  # interval or budget %
                SweepParameter("intensity", [0.8, 1.0, 1.2]),
            ]
        )
    )
    manifest = campaign.to_manifest()
    print(f"campaign {manifest.campaign!r}: {len(manifest)} configurations")

    # -- 2. Execute every configuration (really) and measure. ---------------
    def run_one(params: dict) -> dict:
        config = RunConfig(grid_n=32, compute_intensity=params["intensity"])
        if params["policy"] == "fixed":
            policy = FixedIntervalPolicy(params["knob"])
        else:
            policy = OverheadBudgetPolicy(params["knob"] / 100.0)
        report = CheckpointedRun(config, policy, seed=17).execute()
        return {
            "runtime_seconds": report.total_seconds,
            "io_seconds": report.io_seconds,
            "checkpoints": report.checkpoints_written,
            "expected_lost_steps": expected_lost_work(
                report.checkpoint_timesteps, config.timesteps
            ),
        }

    results = LocalExecutor(max_workers=4).run(manifest, run_one)

    # -- 3. Build the catalog: the campaign's queryable product. -------------
    catalog = CampaignCatalog(manifest.campaign)
    for run in manifest.runs:
        catalog.add(run.run_id, run.parameters, results[run.run_id].value)
    print(f"catalog holds {len(catalog)} runs with metrics {sorted(catalog.metric_names())}\n")

    # -- 4. Declared objectives. ----------------------------------------------
    fast = Objective("optimal-runtime", "runtime_seconds", Direction.MINIMIZE)
    resilient = Objective("minimal-lost-work", "expected_lost_steps", Direction.MINIMIZE)

    print("== best configuration per objective ==")
    for objective in (fast, resilient):
        best = catalog.best(objective)
        print(
            f"  {objective.name:18s} -> {best.parameters} "
            f"({objective.metric}={best.metric(objective.metric):.1f})"
        )

    print("\n== runtime / resilience Pareto front ==")
    for record in catalog.pareto_front([fast, resilient]):
        print(
            f"  {record.parameters}  runtime={record.metric('runtime_seconds'):7.1f}s "
            f"E[lost]={record.metric('expected_lost_steps'):.1f} steps"
        )

    print("\n== which parameter matters for which metric ==")
    for metric in ("runtime_seconds", "expected_lost_steps"):
        ranking = catalog.impact_ranking(metric)
        ranked = ", ".join(f"{p} (effect {e:.2f})" for p, e in ranking)
        print(f"  {metric:20s}: {ranked}")


if __name__ == "__main__":
    main()
