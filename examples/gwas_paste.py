#!/usr/bin/env python3
"""The GWAS paste workflow, end to end (§V-A / Figure 2).

Synthesizes per-chunk genotype tables, writes the JSON model — the single
point of user interaction — generates every workflow artifact with Skel,
executes the two-phase paste for real, and prints the Figure 2
manual-intervention comparison.

Run:  python examples/gwas_paste.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.apps.gwas import (
    GwasPasteWorkflow,
    gwas_scan,
    manual_vs_generated,
    recovery_rate,
    write_gwas_dataset,
)
from repro.skel import SkelModel, paste_model_schema


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = Path(tmp) / "data"

        # -- 1. The dataset: per-chunk genotype tables + a phenotype tied
        #       to planted causal SNPs. -------------------------------------
        paths, phenotype_path, truth = write_gwas_dataset(
            data_dir, n_files=24, n_samples=400, snps_per_file=8,
            n_causal=5, heritability=0.8, seed=42,
        )
        print(
            f"wrote {len(paths)} genotype chunks + {phenotype_path.name} "
            f"under {data_dir} (causal SNPs: {sorted(truth.causal_snps)})"
        )

        # -- 2. The model: the ONLY thing the user edits. -------------------
        model = SkelModel(
            paste_model_schema(),
            {
                "dataset_dir": str(data_dir),
                "file_pattern": "chunk_*.tsv",
                "output_file": "genotypes_merged.tsv",
                "num_files": 24,
                "group_size": 10,
                "machine_name": "simcluster",
                "account": "BIO001",
            },
        )
        model_path = Path(tmp) / "paste_model.json"
        model_path.write_text(model.to_json())
        print(f"model written to {model_path} — the single point of interaction")

        # -- 3. Generate every artifact from the model. ---------------------
        workflow = GwasPasteWorkflow.from_json(model_path)
        out_dir = Path(tmp) / "generated"
        written = workflow.write_to(out_dir)
        print(f"\ngenerated {len(written)} files:")
        for p in sorted(written):
            print(f"  {p.relative_to(out_dir)}")

        # -- 4. The Cheetah campaign view of the same plan. ------------------
        manifest = workflow.campaign().to_manifest()
        print(f"\ncampaign: {manifest.campaign} with {len(manifest)} sub-paste runs")

        # -- 5. Execute the paste for real. ----------------------------------
        result = workflow.execute_local(data_dir)
        merged = data_dir / "genotypes_merged.tsv"
        lines = merged.read_text().splitlines()
        print(
            f"\nexecuted: {result['groups']} sub-pastes (max fan-in "
            f"{result['max_fan_in']}) -> {merged.name}: "
            f"{len(lines)} rows x {len(lines[0].split(chr(9)))} columns"
        )

        # -- 6. The science the pasted matrix feeds: an association scan. ----
        rows = merged.read_text().splitlines()
        genotypes = np.array(
            [[int(v) for v in row.split("\t")] for row in rows[1:]]
        )
        phenotype = np.array(
            [float(v) for v in phenotype_path.read_text().splitlines()[1:]]
        )
        scan = gwas_scan(genotypes, phenotype)
        hits = scan.significant(alpha=0.05)
        recovered = recovery_rate(scan, truth.causal_snps)
        print(
            f"\nGWAS scan over the merged matrix: {scan.n_snps} SNPs tested, "
            f"{len(hits)} Bonferroni-significant associations, "
            f"{recovered:.0%} of planted causal SNPs recovered"
        )
        for idx, beta, p in scan.top(3):
            mark = "*" if idx in truth.causal_snps else " "
            print(f"  SNP {idx:3d}{mark}: beta={beta:+.2f}, p={p:.2e}")

        # -- 7. Figure 2: what all this replaced. -----------------------------
        comparison = manual_vs_generated(num_files=24, group_size=10)
        print("\n== Figure 2: manual edits per new run configuration ==")
        print(f"  traditional script : {comparison['traditional_edits_per_configuration']}")
        print(f"  skel model         : {comparison['skel_edits_per_configuration']}")
        print(f"  reduction          : {comparison['reduction_factor']:.0f}x")


if __name__ == "__main__":
    main()
