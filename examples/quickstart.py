#!/usr/bin/env python3
"""Quickstart: the six-gauge reusability model in five minutes.

Describes a workflow component, assesses it mechanically, scores its
technical debt under the built-in reuse scenarios, raises two gauge
tiers, and shows the debt trend — the paper's core loop.

Run:  python examples/quickstart.py
"""

from repro.gauges import (
    ComponentKind,
    ComponentRegistry,
    DataPort,
    Gauge,
    ReusabilityTrajectory,
    SoftwareMetadata,
    WorkflowComponent,
    assess,
    builtin_scenarios,
    score,
)
from repro.metadata import (
    AccessInterface,
    AccessProtocol,
    ConsumptionPattern,
    DataAccessDescriptor,
    DataSchema,
    DataSemanticsDescriptor,
    Field,
)


def main() -> None:
    # -- 1. Describe a component as you found it: mostly a black box. -----
    component = WorkflowComponent(
        name="variant-caller",
        description="inherited analysis script",
        ports=(
            DataPort(
                name="reads",
                direction="in",
                access=DataAccessDescriptor(protocol=AccessProtocol.POSIX_FILE),
            ),
            DataPort(name="calls", direction="out"),
        ),
        software=SoftwareMetadata(kind=ComponentKind.EXECUTABLE),
    )

    assessment = assess(component)
    print("== initial assessment ==")
    for gauge, tier in assessment.profile.as_dict().items():
        print(f"  {gauge:28s} {tier}")

    # -- 2. Score the human cost of reusing it. ----------------------------
    scenarios = builtin_scenarios()
    print("\n== technical debt (manual minutes per reuse) ==")
    for name, scenario in scenarios.items():
        report = score(component, scenario)
        print(
            f"  {name:18s} {report.manual_minutes:6.0f} min manual, "
            f"{report.automation_fraction:.0%} automated"
        )

    # -- 3. Invest: declare the schema and expose the configuration. -------
    described = WorkflowComponent(
        name="variant-caller",
        description="same script, now described",
        ports=(
            DataPort(
                name="reads",
                direction="in",
                access=DataAccessDescriptor(
                    protocol=AccessProtocol.POSIX_FILE,
                    interface=AccessInterface.DELIMITED_TEXT,
                ),
                schema=DataSchema(
                    "read-table", "1", (Field("sequence", "str"), Field("quality", "int8"))
                ),
                semantics=DataSemanticsDescriptor(consumption=ConsumptionPattern.ELEMENT),
            ),
            DataPort(
                name="calls",
                direction="out",
                access=DataAccessDescriptor(
                    protocol=AccessProtocol.POSIX_FILE,
                    interface=AccessInterface.DELIMITED_TEXT,
                ),
                schema=DataSchema("vcf-like", "1", (Field("site", "int64"),)),
                semantics=DataSemanticsDescriptor(consumption=ConsumptionPattern.ELEMENT),
            ),
        ),
        software=SoftwareMetadata(
            kind=ComponentKind.EXECUTABLE,
            config_template="variant-caller launch template",
            exposed_variables=("reference", "threads", "min_quality"),
            generation_model={"schema": "variant-caller"},
        ),
    )

    # -- 4. Track the trajectory; gauges never silently regress. -----------
    trajectory = ReusabilityTrajectory("variant-caller")
    trajectory.record("as-found", assessment.profile)
    trajectory.record("described", assess(described).profile)
    print("\n== gauge advances ==")
    for src, dst, gauge, old, new in trajectory.advances():
        print(f"  {gauge.value:28s} {old} -> {new}  ({src} -> {dst})")
    print(f"  monotone: {trajectory.is_monotone()}")

    print("\n== debt trend (new-dataset scenario) ==")
    for label, minutes in trajectory.debt_trend(scenarios["new-dataset"]):
        print(f"  {label:10s} {minutes:6.0f} min")

    # -- 5. Catalog components; plan the next automation investment. -------
    registry = ComponentRegistry()
    registry.register(component)
    registry.register(described)
    print("\n== cheapest next advance (new-machine scenario) ==")
    for name, gauge, tier, saved in registry.cheapest_advance(scenarios["new-machine"]):
        print(f"  {name:16s} raise {gauge.value} to tier {tier}: saves {saved:.0f} min")

    # -- 6. The FAIR view (conclusion: R1.2 / R1.3 / I3). -------------------
    from repro.gauges import fair_report

    print()
    print(fair_report(assess(described).profile))


if __name__ == "__main__":
    main()
