#!/usr/bin/env python3
"""The synthetic streaming workflow (§V-C / Figure 5).

Generates the communication components (collector + forwarder) from the
data descriptors, wires them around the data scheduler, and installs
selection policies at runtime through the control channel — including a
direct-selection policy that did not exist at code-generation time.

Run:  python examples/streaming_pipeline.py
"""

from repro.dataflow import (
    CommunicationCodegen,
    DataflowGraph,
    DataScheduler,
    Punctuation,
    Sink,
    SlidingWindowCount,
    DirectSelection,
    generated_source_reuse,
)
from repro.dataflow.components import ControlSource
from repro.metadata import (
    ConsumptionPattern,
    DataSchema,
    DataSemanticsDescriptor,
    Field,
    Ordering,
)


def main() -> None:
    # -- 1. The data contract, as machine-actionable descriptors. ----------
    schema = DataSchema(
        "telemetry", "1",
        (Field("v", "int64", description="sensor value"),
         Field("t", "float64", description="capture time")),
    )
    semantics = DataSemanticsDescriptor(
        ordering=Ordering.ORDERED, consumption=ConsumptionPattern.ELEMENT
    )

    # -- 2. Generate the communication components from the contract. -------
    codegen = CommunicationCodegen()
    files = codegen.generate(schema, semantics)
    print("generated communication components:")
    for f in files:
        print(f"  {f.relpath} ({len(f.content.splitlines())} lines)")
    classes = codegen.materialize(files)
    Collector = classes["GeneratedTelemetryCollector"]
    Forwarder = classes["GeneratedTelemetryForwarder"]

    # -- 3. Wire the Figure 5 workflow. -------------------------------------
    n_items = 1000
    graph = DataflowGraph("instrument-pipeline")
    instrument = graph.add(
        Collector("instrument", ({"v": i, "t": float(i)} for i in range(n_items)))
    )
    scheduler = graph.add(DataScheduler("scheduler", subscribers=("archive", "monitor")))
    forwarder = graph.add(Forwarder("forwarder"))
    archive = graph.add(Sink("archive"))
    monitor = graph.add(Sink("monitor"))

    # A remote steering process: installs a windowing policy early, then a
    # direct-selection policy that arrives with its own predicate —
    # "a policy which was unknown at code-generation time".
    steering = graph.add(
        ControlSource(
            "steering",
            [
                (100, Punctuation("install-policy", ("monitor", SlidingWindowCount(8, stride=8)))),
                (600, Punctuation("install-policy",
                                  ("monitor", DirectSelection(lambda it: it.payload["v"] % 100 == 0)))),
            ],
            watch=scheduler,
        )
    )

    graph.connect(instrument, "out", scheduler, "in")
    graph.connect(steering, "out", scheduler, "control")
    graph.connect(scheduler, "archive", forwarder, "in")
    graph.connect(forwarder, "out", archive, "in")
    graph.connect(scheduler, "monitor", monitor, "in")

    metrics = graph.run()

    # -- 4. What happened. ----------------------------------------------------
    print(f"\nprocessed {n_items} items in {metrics['rounds']} rounds "
          f"({metrics['throughput_items_per_s']:.0f} channel items/s)")
    print(f"archive received {len(archive.received)} marshalled tuples "
          f"(first: {archive.payloads()[0]})")
    print(f"monitor received {len(monitor.received)} selected items")
    print("policy installs on the monitor queue:")
    for watermark, policy in scheduler.queues["monitor"].installs:
        print(f"  after item {watermark}: {policy}")

    # -- 5. The reuse claim: policy swaps touched zero generated lines. -----
    print(f"\ncommunication-code reuse across the policy swaps: "
          f"{generated_source_reuse(files, files):.0%}")


if __name__ == "__main__":
    main()
