#!/usr/bin/env python3
"""Overhead-driven checkpointing (§V-B / Figures 3-4).

Runs the reaction-diffusion benchmark under three checkpoint policies on
the simulated parallel filesystem, sweeps the permitted I/O overhead
(Figure 3), repeats runs at a fixed 10% budget (Figure 4), and shows what
the checkpoint schedule buys at restart time.

Run:  python examples/checkpoint_policy.py
"""

import numpy as np

from repro.apps.simulation import (
    FixedIntervalPolicy,
    HybridPolicy,
    OverheadBudgetPolicy,
    CheckpointedRun,
    RunConfig,
    expected_lost_work,
)
from repro.apps.simulation.run import overhead_sweep, variation_study


def main() -> None:
    config = RunConfig()  # 50 timesteps, 1 TB/step, simulated shared PFS

    print("== policy comparison (same system draw) ==")
    for policy in (
        FixedIntervalPolicy(5),
        OverheadBudgetPolicy(0.10),
        HybridPolicy(0.10, max_gap=10),
    ):
        report = CheckpointedRun(config, policy, seed=7).execute()
        lost = expected_lost_work(report.checkpoint_timesteps, config.timesteps)
        print(
            f"  {report.policy_name:26s} {report.checkpoints_written:2d} checkpoints, "
            f"overhead {report.overhead_fraction:5.1%}, E[lost work] {lost:4.1f} steps"
        )

    print("\n== Figure 3: checkpoints vs permitted I/O overhead ==")
    for overhead, count in overhead_sweep(
        (0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50), config=config, seed=7
    ):
        bar = "#" * count
        print(f"  {overhead:4.0%}  {count:2d}/{config.timesteps}  {bar}")

    print("\n== Figure 4: run-to-run variation at the 10% budget ==")
    reports = variation_study(8, overhead=0.10, config=config, seed=11)
    counts = [r.checkpoints_written for r in reports]
    for i, r in enumerate(reports):
        print(
            f"  run {i}: {r.checkpoints_written:2d} checkpoints "
            f"(compute intensity {r.config.compute_intensity:.2f}, "
            f"achieved overhead {r.overhead_fraction:.1%})"
        )
    print(f"  spread: min={min(counts)} max={max(counts)} std={np.std(counts):.2f}")

    print("\n== restart: what the schedule buys ==")
    budget = CheckpointedRun(config, OverheadBudgetPolicy(0.10), seed=7).execute()
    for fail_at in (15, 30, 45):
        from repro.apps.simulation import lost_work_on_failure

        lost = lost_work_on_failure(budget.checkpoint_timesteps, fail_at)
        print(f"  failure after step {fail_at}: rewind {lost} steps")


if __name__ == "__main__":
    main()
