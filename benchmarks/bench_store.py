#!/usr/bin/env python
"""Campaign-store benchmark: bulk SQL ingestion + query pushdown vs files.

The ROADMAP north-star talks about a million-run campaign catalog.  The
pre-store persistence path pays one fsynced JSON file per run on write
and a full directory scan + in-memory catalog build per query.  The
campaign store (:mod:`repro.store`) replaces both with chunked
``executemany`` bulk ingestion into sqlite and §II-C catalog queries
(``best`` / ``rank`` / Pareto / impact) pushed down to SQL.

Per tier of N runs this benchmark measures:

- **files ingest**: per-run ``CampaignDirectory.write_run_result`` — the
  real atomic-write path (temp file + fsync + rename), N times;
- **store ingest**: ``ensure_campaign`` + N buffered ``add_result`` +
  final flush — chunked bulk inserts in whole transactions;
- **files query**: read every ``result.json`` back, build the in-memory
  ``CampaignCatalog``, answer best/rank/pareto/impact;
- **store query**: the same four answers evaluated inside sqlite;
- **queries_match**: the two worlds returned identical run ids (exact
  for best/rank/pareto, numeric agreement for impact).

Results go, schema-versioned (``repro.bench.store/v1``), to
``benchmarks/results/BENCH_store.json`` and are validated by
``tools/check_bench_schema.py``.  The acceptance bar is
``speedup_ingest >= 5`` at the 10k-run tier.

Modes
-----
``--quick``
    one 2,000-run tier, both sides measured — seconds end to end, CI smoke.
full (default)
    a measured 10,000-run tier plus a 100,000-run tier where the store is
    measured and the per-file baseline is extrapolated from the measured
    10k per-file rate (writing 100k fsynced files just to time them adds
    minutes for no information; the entry is flagged
    ``files_extrapolated``).
"""

from __future__ import annotations

import argparse
import gc
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter  # noqa: E402
from repro.cheetah.catalog import CampaignCatalog  # noqa: E402
from repro.cheetah.directory import CampaignDirectory  # noqa: E402
from repro.cheetah.objectives import Direction, Objective  # noqa: E402
from repro.store import CampaignStore, metrics_from_value  # noqa: E402

SCHEMA = "repro.bench.store/v1"
RESULTS = REPO / "benchmarks" / "results"
DEFAULT_OUTPUT = RESULTS / "BENCH_store.json"

MODES = {
    "quick": {
        "tiers": [{"runs": 2_000, "measure_files": True, "pareto": True}],
        "rounds": 2,
    },
    "full": {
        "tiers": [
            # pareto joins the timed query set only at the 2k tier: the
            # in-memory baseline's dominance check is O(n^2) Python and
            # would time the interpreter, not the persistence layer.
            {"runs": 2_000, "measure_files": True, "pareto": True},
            {"runs": 10_000, "measure_files": True, "pareto": False},
            {"runs": 100_000, "measure_files": False, "pareto": False},
        ],
        "rounds": 2,
    },
}

LOSS = Objective("loss", metric="loss", direction=Direction.MINIMIZE)
COST = Objective("cost", metric="cost", direction=Direction.MINIMIZE)


def make_manifest(n_runs: int, campaign: str):
    camp = Campaign(campaign, app=AppSpec("bench-app"), objective="minimize loss")
    group = camp.sweep_group("g", nodes=1, walltime=600.0)
    group.add(
        Sweep([SweepParameter("x", range(n_runs // 2)), SweepParameter("mode", ["a", "b"])])
    )
    return camp.to_manifest()


def outcome_of(i: int, run) -> dict:
    """A deterministic, realistic run outcome for run index ``i``."""
    x = run.parameters["x"]
    mode_bump = 0.25 if run.parameters["mode"] == "b" else 0.0
    return {
        "run_id": run.run_id,
        "status": "done",
        "value": {
            "loss": float((x * 7919) % 1000) / 100.0 + mode_bump,
            "cost": float((x * 104729) % 500) / 10.0,
        },
        "error": None,
        "traceback": None,
        "elapsed": 0.001 * (i % 97),
        "attempts": 1,
        "seed": i,
    }


def timed(fn):
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        out = fn()
        return time.perf_counter() - t0, out
    finally:
        gc.enable()


def ingest_files(workdir: Path, manifest) -> float:
    """The per-file baseline: one atomic fsynced JSON write per run."""
    directory = CampaignDirectory(workdir, manifest)

    def write_all():
        for i, run in enumerate(manifest.runs):
            directory.write_run_result(run.run_id, outcome_of(i, run))

    seconds, _ = timed(write_all)
    return seconds


def query_files(workdir: Path, manifest, pareto: bool):
    """The pre-store query path: scan files, build the catalog, answer."""
    directory = CampaignDirectory(workdir, manifest)

    def build_and_query():
        catalog = CampaignCatalog(manifest.campaign)
        for run in manifest.runs:
            payload = directory.read_run_result(run.run_id)
            catalog.add(
                run.run_id, dict(run.parameters), metrics_from_value(payload["value"])
            )
        return answers_of(catalog, pareto)

    return timed(build_and_query)


def ingest_store(db: Path, manifest) -> float:
    """The store path: register the manifest, bulk-ingest every outcome."""

    def write_all():
        with CampaignStore(db) as store:
            store.ensure_campaign(manifest)
            for i, run in enumerate(manifest.runs):
                payload = outcome_of(i, run)
                store.add_result(
                    manifest.campaign,
                    run.run_id,
                    value=payload["value"],
                    elapsed=payload["elapsed"],
                    attempts=payload["attempts"],
                    seed=payload["seed"],
                )

    seconds, _ = timed(write_all)
    return seconds


def query_store(db: Path, manifest, pareto: bool):
    def run_queries():
        with CampaignStore(db) as store:
            return answers_of(store.catalog(manifest.campaign), pareto)

    return timed(run_queries)


def answers_of(catalog, pareto: bool) -> dict:
    """The §II-C answers, in a comparable shape."""
    impact = catalog.parameter_impact("mode", "loss")
    answers = {
        "best": catalog.best(LOSS).run_id,
        "rank": [r.run_id for r in catalog.rank(LOSS, k=10)],
        "impact_effect": impact["effect"],
    }
    if pareto:
        answers["pareto"] = sorted(
            r.run_id for r in catalog.pareto_front([LOSS, COST])
        )
    return answers


def answers_match(a: dict, b: dict) -> bool:
    return (
        a["best"] == b["best"]
        and a["rank"] == b["rank"]
        and a.get("pareto") == b.get("pareto")
        and abs(a["impact_effect"] - b["impact_effect"]) <= 1e-9 * max(1.0, abs(a["impact_effect"]))
    )


def run_tier(
    runs: int,
    measure_files: bool,
    rounds: int,
    files_rate: float | None,
    pareto: bool,
):
    manifest = make_manifest(runs, f"bench-store-{runs}")
    best = {
        "files_ingest": float("inf"),
        "store_ingest": float("inf"),
        "files_query": float("inf"),
        "store_query": float("inf"),
    }
    queries_match = True
    for _ in range(rounds):
        workdir = Path(tempfile.mkdtemp(prefix="bench-store-"))
        try:
            store_answers = files_answers = None
            if measure_files:
                best["files_ingest"] = min(
                    best["files_ingest"], ingest_files(workdir, manifest)
                )
                seconds, files_answers = query_files(workdir, manifest, pareto)
                best["files_query"] = min(best["files_query"], seconds)
            db = workdir / "store.sqlite"
            best["store_ingest"] = min(best["store_ingest"], ingest_store(db, manifest))
            seconds, store_answers = query_store(db, manifest, pareto)
            best["store_query"] = min(best["store_query"], seconds)
            if files_answers is not None:
                queries_match = queries_match and answers_match(
                    files_answers, store_answers
                )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    if measure_files:
        files_ingest = best["files_ingest"]
        files_query = best["files_query"]
        extrapolated = False
    else:
        # per-file writes are O(runs): scale the measured rate
        assert files_rate is not None, "measured tier must come first"
        files_ingest = runs / files_rate
        files_query = None
        extrapolated = True

    tier = {
        "runs": runs,
        "pareto_in_query_set": pareto,
        "files_ingest_seconds": files_ingest,
        "files_runs_per_sec": runs / files_ingest,
        "store_ingest_seconds": best["store_ingest"],
        "store_runs_per_sec": runs / best["store_ingest"],
        "speedup_ingest": files_ingest / best["store_ingest"],
        "files_extrapolated": extrapolated,
        "store_query_seconds": best["store_query"],
        "queries_match": queries_match,
    }
    if files_query is not None:
        tier["files_query_seconds"] = files_query
        tier["speedup_query"] = files_query / best["store_query"]
    return tier


def run_bench(mode: str) -> dict:
    shape = MODES[mode]
    tiers = []
    files_rate = None
    for tier_shape in shape["tiers"]:
        tier = run_tier(
            tier_shape["runs"],
            tier_shape["measure_files"],
            shape["rounds"],
            files_rate,
            tier_shape["pareto"],
        )
        if not tier["files_extrapolated"]:
            files_rate = tier["files_runs_per_sec"]
        tiers.append(tier)
    return {
        "mode": mode,
        "workload": {
            "name": "synthetic-codesign-campaign",
            "params_per_run": 2,
            "metrics_per_run": 2,
        },
        "protocol": (
            f"gc-disabled best-of-{shape['rounds']}; files = per-run atomic "
            "fsynced result.json writes + full-scan catalog build; store = "
            "chunked executemany ingestion + SQL catalog queries; "
            "extrapolated tiers scale the measured per-file rate"
        ),
        "rounds": shape["rounds"],
        "tiers": tiers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true", help="CI shape (one 2k tier)")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"where to write the JSON (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    result = run_bench(mode)
    for tier in result["tiers"]:
        extra = " (files extrapolated)" if tier["files_extrapolated"] else ""
        print(
            f"[{mode}] {tier['runs']} runs: files {tier['files_ingest_seconds']:.2f}s "
            f"({tier['files_runs_per_sec']:.0f}/s){extra}, store "
            f"{tier['store_ingest_seconds']:.2f}s ({tier['store_runs_per_sec']:.0f}/s) "
            f"-> {tier['speedup_ingest']:.1f}x ingest; store queries "
            f"{tier['store_query_seconds']:.3f}s, match={tier['queries_match']}"
        )

    output = args.output or DEFAULT_OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    document = {"schema": SCHEMA, "modes": {}}
    if output.exists():
        try:
            existing = json.loads(output.read_text())
            if existing.get("schema") == SCHEMA:
                document = existing
        except (json.JSONDecodeError, OSError):
            pass
    document.setdefault("modes", {})[mode] = result
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"[wrote {output} ({mode} entry)]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
