"""Ablation benches for the design choices DESIGN.md §7 calls out.

A1 — the set-synchronization barrier is the root cause of Figure 6/7.
A2 — the dynamic/static gap grows with the task-duration tail.
A3 — checkpoint policy family comparison (fixed / budget / hybrid).
A4 — paste fan-in: why the GWAS workflow pastes in two phases.
A5 — codegen granularity: per-component templates maximize reuse.
"""


from repro._util import format_table
from repro.apps.irf.loop import feature_run_durations
from repro.cluster import ClusterSpec, SimulatedCluster
from repro.cluster.job import Task
from repro.savanna import PilotExecutor, StaticSetExecutor


def _cluster(nodes=16, seed=0):
    return SimulatedCluster(
        ClusterSpec(nodes=nodes, queue_sigma=0.0, queue_median_wait=60.0,
                    node_mttf=None, fs_load=None),
        seed=seed,
    )


def _tasks(n, sigma, seed=9, median=300.0):
    durations = feature_run_durations(
        n, median_seconds=median, sigma=sigma, max_seconds=6000.0, seed=seed
    )
    return [Task(name=f"t{i}", duration=float(d)) for i, d in enumerate(durations)]


def test_a1_barrier_is_the_root_cause(benchmark, save_result):
    """A1: same workload, same nodes — removing only the barrier recovers
    nearly all of the dynamic scheduler's makespan win."""

    def run():
        rows = []
        for label, make in (
            ("static (barrier)", lambda c: StaticSetExecutor(c, set_gap=0.0)),
            ("dynamic (no barrier)", lambda c: PilotExecutor(c)),
        ):
            cluster = _cluster()
            result = make(cluster).run(
                _tasks(128, sigma=1.2), nodes=16, walltime=10**7, max_allocations=1
            )
            rows.append((label, f"{result.makespan():.0f}s", len(result.completed)))
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    save_result(
        "ablation_a1_barrier",
        "A1 — barrier ablation (identical workload, identical nodes)\n"
        + format_table(("scheduler", "makespan", "completed"), rows),
    )
    static_s = float(rows[0][1][:-1])
    dynamic_s = float(rows[1][1][:-1])
    assert static_s > 1.3 * dynamic_s


def test_a2_speedup_grows_with_tail(benchmark, save_result):
    """A2: dynamic/static makespan ratio rises with duration-tail weight."""

    def run():
        rows = []
        for sigma in (0.25, 0.75, 1.25):
            static = StaticSetExecutor(_cluster()).run(
                _tasks(96, sigma=sigma), nodes=16, walltime=10**7, max_allocations=1
            )
            dynamic = PilotExecutor(_cluster()).run(
                _tasks(96, sigma=sigma), nodes=16, walltime=10**7, max_allocations=1
            )
            rows.append((sigma, static.makespan() / dynamic.makespan()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_a2_tail",
        "A2 — dynamic-over-static makespan ratio vs duration-tail sigma\n"
        + format_table(("sigma", "static/dynamic makespan"), rows),
    )
    ratios = [r for _s, r in rows]
    assert ratios[-1] > ratios[0], "heavier tails must widen the gap"


def test_a3_policy_family(benchmark, save_result):
    """A3: fixed-interval vs overhead-budget vs hybrid, same system draw.

    The budget policy holds overhead near the target; fixed-interval
    overshoots or undershoots depending on system state; the hybrid adds
    a bounded-gap guarantee at slightly higher overhead."""
    from repro.apps.simulation.checkpoint import (
        FixedIntervalPolicy,
        HybridPolicy,
        OverheadBudgetPolicy,
    )
    from repro.apps.simulation.restart import expected_lost_work
    from repro.apps.simulation.run import CheckpointedRun, RunConfig

    config = RunConfig()

    def run():
        rows = []
        for policy in (
            FixedIntervalPolicy(5),
            OverheadBudgetPolicy(0.10),
            HybridPolicy(0.10, max_gap=10),
        ):
            report = CheckpointedRun(config, policy, seed=7).execute()
            rows.append(
                (
                    report.policy_name,
                    report.checkpoints_written,
                    f"{report.overhead_fraction:.1%}",
                    f"{expected_lost_work(report.checkpoint_timesteps, config.timesteps):.1f}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    save_result(
        "ablation_a3_policies",
        "A3 — checkpoint policy family (50 steps, same seeds)\n"
        + format_table(
            ("policy", "checkpoints", "achieved overhead", "E[lost steps]"), rows
        ),
    )
    by_policy = {r[0]: r for r in rows}
    budget_overhead = float(by_policy["overhead-budget(10%)"][2].rstrip("%"))
    fixed_overhead = float(by_policy["fixed-interval(5)"][2].rstrip("%"))
    assert budget_overhead <= 13.0
    assert fixed_overhead > budget_overhead  # fixed ignores the system state
    # hybrid bounds the gap between checkpoints
    hybrid = by_policy["hybrid(10%, gap<=10)"]
    assert float(hybrid[3]) <= 6.0


def test_a4_paste_fan_in(benchmark, save_result):
    """A4: single-phase paste hits the filesystem metadata knee; two-phase
    with moderate groups dodges it; absurdly small groups pay re-read cost."""
    from repro.apps.gwas.paste import estimate_paste_time
    from repro.cluster.filesystem import ParallelFilesystem

    n_files, bytes_per_file = 20000, 5e7  # 1 TB total, the paper's scale class

    def run():
        rows = []
        for label, group in (
            ("single-phase", None),
            ("two-phase, groups of 10", 10),
            ("two-phase, groups of 100", 100),
            ("two-phase, groups of 1000", 1000),
        ):
            fs = ParallelFilesystem(peak_bandwidth=5e10, load_model=None)
            seconds = estimate_paste_time(n_files, bytes_per_file, fs, group_size=group)
            rows.append((label, f"{seconds:.0f}s"))
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    save_result(
        "ablation_a4_fan_in",
        "A4 — paste strategy cost at 20k files x 50 MB (simulated PFS)\n"
        + format_table(("strategy", "estimated time"), rows),
    )
    seconds = {label: float(t[:-1]) for label, t in rows}
    assert seconds["two-phase, groups of 100"] < seconds["single-phase"]


def test_a6_node_heterogeneity(benchmark, save_result):
    """A6: per-node speed spread is a second straggler source the barrier
    amplifies — the dynamic advantage grows with fleet heterogeneity even
    when the *workload* skew is held fixed."""

    def run():
        rows = []
        durations = feature_run_durations(96, median_seconds=120.0, sigma=0.5, seed=13)
        for speed_sigma in (0.0, 0.25, 0.5):
            def make_cluster(speed_sigma=speed_sigma):
                return SimulatedCluster(
                    ClusterSpec(
                        nodes=16, queue_sigma=0.0, queue_median_wait=0.0,
                        node_mttf=None, fs_load=None, node_speed_sigma=speed_sigma,
                    ),
                    seed=13,
                )

            def tasks():
                from repro.cluster.job import Task

                return [
                    Task(name=f"t{i}", duration=float(d))
                    for i, d in enumerate(durations)
                ]

            static = StaticSetExecutor(make_cluster()).run(
                tasks(), nodes=16, walltime=10**7
            )
            dynamic = PilotExecutor(make_cluster()).run(
                tasks(), nodes=16, walltime=10**7
            )
            rows.append(
                (speed_sigma, f"{static.makespan() / dynamic.makespan():.2f}")
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_a6_heterogeneity",
        "A6 — static/dynamic makespan ratio vs node-speed sigma "
        "(workload skew fixed)\n"
        + format_table(("node speed sigma", "static/dynamic makespan"), rows),
    )
    ratios = [float(r) for _s, r in rows]
    assert ratios[-1] > ratios[0]


def test_a5_codegen_granularity(benchmark, save_result):
    """A5: per-component templates mean a policy change regenerates zero
    communication lines, and a schema change regenerates only marshalling
    lines — the right-sized granularity claim of the conclusion."""
    from repro.dataflow.codegen import CommunicationCodegen, generated_source_reuse
    from repro.metadata.schema import DataSchema, Field
    from repro.metadata.semantics import DataSemanticsDescriptor, Ordering

    semantics = DataSemanticsDescriptor(ordering=Ordering.ORDERED)
    base = DataSchema("telemetry", "1", (Field("v", "int64"), Field("t", "float64")))

    def run():
        cg = CommunicationCodegen()
        files = cg.generate(base, semantics)
        rows = []
        for label, schema, sem in (
            ("policy swap (no regeneration)", base, semantics),
            (
                "add one field",
                DataSchema("telemetry", "1", base.fields + (Field("q", "int8"),)),
                semantics,
            ),
            (
                "flip order semantics",
                base,
                DataSemanticsDescriptor(ordering=Ordering.UNORDERED),
            ),
        ):
            after = cg.generate(schema, sem)
            rows.append((label, f"{generated_source_reuse(files, after):.1%}"))
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    save_result(
        "ablation_a5_granularity",
        "A5 — generated-communication reuse across change classes\n"
        + format_table(("change", "line reuse"), rows),
    )
    reuse = {label: float(v.rstrip("%")) for label, v in rows}
    assert reuse["policy swap (no regeneration)"] == 100.0
    assert reuse["add one field"] > 80.0
    assert reuse["flip order semantics"] > 90.0
