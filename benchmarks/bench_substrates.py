"""Microbenchmarks for the substrates the figures stand on.

These track the costs that make the reproduction practical: the
discrete-event core, template rendering, conversion planning, tree
fitting, and the paste kernel.  They are classic pytest-benchmark
measurements (many rounds), unlike the figure benches.
"""

import numpy as np

from repro.cluster.engine import Simulator


def test_des_event_throughput(benchmark):
    """Events/second through the discrete-event core."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 5000


def test_template_render_throughput(benchmark):
    """Rendering a looping, branching template."""
    from repro.skel.templates import Template

    template = Template(
        "{% for g in groups %}job ${g.i}: {% if g.i == 0 %}first{% else %}rest{% endif %}\n{% endfor %}"
    )
    context = {"groups": [{"i": i} for i in range(100)]}
    out = benchmark(template.render, context)
    assert out.count("\n") == 100


def test_conversion_planning(benchmark):
    """Shortest-path planning over a 40-format converter graph."""
    from repro.metadata.schema import FormatConverterRegistry

    reg = FormatConverterRegistry()
    for i in range(40):
        reg.register(f"fmt{i}", f"fmt{i + 1}", lambda d: d)
    plan = benchmark(reg.plan, "fmt0", "fmt40")
    assert plan.length == 40


def test_tree_fit_cost(benchmark):
    """One CART fit on 1000 x 20 (the per-node vectorized split search)."""
    from repro.apps.irf.tree import DecisionTreeRegressor

    rng = np.random.default_rng(0)
    X = rng.standard_normal((1000, 20))
    y = X[:, 3] * 2 + np.sin(X[:, 7]) + 0.1 * rng.standard_normal(1000)

    def fit():
        return DecisionTreeRegressor(max_depth=6, max_features="sqrt", seed=1).fit(X, y)

    tree = benchmark(fit)
    assert tree.feature_importances_.sum() > 0


def test_grayscott_step_cost(benchmark):
    """One vectorized reaction-diffusion step on a 128x128 grid."""
    from repro.apps.simulation.grayscott import GrayScottParams, GrayScottSimulation

    sim = GrayScottSimulation(GrayScottParams(n=128), seed=0)
    benchmark(sim.step, 1)
    assert np.all(np.isfinite(sim.u))


def test_paste_kernel_cost(benchmark, tmp_path):
    """Streaming column paste of 20 files x 500 rows."""
    from repro.apps.gwas.paste import paste_files

    paths = []
    for i in range(20):
        p = tmp_path / f"f{i}.tsv"
        p.write_text("\n".join(f"{i}.{r}" for r in range(500)) + "\n")
        paths.append(p)

    out = benchmark(paste_files, paths, tmp_path / "out.tsv")
    assert len(out.read_text().splitlines()) == 500


def test_campaign_manifest_roundtrip_cost(benchmark):
    """Serialize + parse a 1606-run manifest (the Fig 7 campaign)."""
    from repro.cheetah import AppSpec, Campaign, RangeParameter, Sweep
    from repro.cheetah.manifest import manifest_from_json, manifest_to_json

    camp = Campaign("c", app=AppSpec("irf"))
    camp.sweep_group("g", nodes=20, walltime=7200.0).add(
        Sweep([RangeParameter("feature", 0, 1606)])
    )
    manifest = camp.to_manifest()

    def roundtrip():
        return manifest_from_json(manifest_to_json(manifest))

    assert len(benchmark(roundtrip)) == 1606
