"""Figure 4 — run-to-run checkpoint variation at a fixed 10% budget.

Paper observation: at a fixed overhead budget, the number of checkpoints
written varies across runs, tracking "changes in application behavior ...
and the state of the HPC system including the overhead on its file
system".  Expected shape: nonzero spread across identically configured
runs, with achieved overhead staying near the declared budget.
"""

import numpy as np

from repro.experiments import fig4_variation


def test_fig4_ckpt_variation(benchmark, save_result):
    result = benchmark.pedantic(
        fig4_variation, kwargs={"n_runs": 10, "overhead": 0.10, "seed": 11},
        rounds=2, iterations=1,
    )
    save_result("fig4_ckpt_variation", result.to_text())
    counts = result.extra["counts"]
    assert max(counts) > min(counts), "identical-policy runs must still vary"
    achieved = [r.overhead_fraction for r in result.extra["reports"]]
    assert all(f <= 0.16 for f in achieved), "achieved overhead must track the budget"


def test_fig4_variation_sources(benchmark, save_result):
    """Ablation of the variance sources: filesystem state alone already
    produces spread; adding application-behaviour changes widens it."""
    from repro.apps.simulation.run import RunConfig, variation_study

    config = RunConfig()
    fs_only = [
        r.checkpoints_written
        for r in benchmark.pedantic(
            variation_study,
            args=(10,),
            kwargs={"overhead": 0.10, "config": config, "seed": 3, "vary_intensity": False},
            rounds=1,
            iterations=1,
        )
    ]
    both = [
        r.checkpoints_written
        for r in variation_study(10, overhead=0.10, config=config, seed=3, vary_intensity=True)
    ]
    text = (
        "Figure 4 variance sources (std of checkpoint count over 10 runs)\n"
        f"filesystem state only:        std={np.std(fs_only):.2f}  counts={fs_only}\n"
        f"+ application behaviour:      std={np.std(both):.2f}  counts={both}"
    )
    save_result("fig4_variation_sources", text)
    assert np.std(both) > 0
