"""Figure 2 — traditional hand-edited script vs Skel-generated workflow.

Regenerates the manual-intervention comparison: how many fields a user
edits per new run configuration, plus the technical-debt collapse under
the new-dataset reuse scenario.  Also benchmarks full workflow generation
(the thing that replaces all those edits) to show regeneration is cheap —
the "no debt accrues from code that can be efficiently deleted and
regenerated" argument is quantitative.
"""

from repro.apps.gwas.workflow import GwasPasteWorkflow
from repro.experiments import fig2_manual_vs_skel
from repro.skel.library import paste_model_schema
from repro.skel.model import SkelModel


def test_fig2_manual_vs_skel(benchmark, save_result, quick):
    result = benchmark.pedantic(
        fig2_manual_vs_skel, args=(250, 100), rounds=1 if quick else 3, iterations=1
    )
    save_result("fig2_manual_vs_skel", result.to_text())
    by_name = {row[0]: row for row in result.rows}
    assert by_name["skel-generated"][1] == 1
    assert by_name["traditional"][1] / by_name["skel-generated"][1] >= 15


def _full_generation():
    model = SkelModel(
        paste_model_schema(),
        {
            "dataset_dir": "/data/gwas",
            "file_pattern": "chunk_*.tsv",
            "output_file": "merged.tsv",
            "num_files": 2500,
            "group_size": 100,
            "machine_name": "summit",
            "account": "BIO123",
        },
    )
    return GwasPasteWorkflow.from_model(model)


def test_regeneration_cost(benchmark):
    """Regenerating the whole 25-subjob workflow takes milliseconds."""
    wf = benchmark(_full_generation)
    assert len(wf.files) == 4 + 25
