#!/usr/bin/env python
"""Incremental-lint-cache benchmark: cold vs. warm over a campaign catalog.

The ROADMAP north-star talks about a million-entry campaign catalog; a
catalog that size cannot afford to re-run thirty rules over every entry
each time one campaign changes.  This benchmark generates a directory of
N real campaign end points (each with a manifest and a couple of source
artifacts, so a cold lint pays the full AST + rule cost), then measures:

- **cold**: ``lint_path`` over the whole catalog with every
  ``.cheetah/lintcache.json`` absent — the full manifest-parse +
  rule-evaluation cost;
- **warm**: the same call again, every digest unchanged — file reads
  plus one SHA-256 per campaign, no rule runs;
- **touched**: one campaign's source modified — the near-O(changed)
  claim: one cold entry, N-1 warm ones.

Results go, schema-versioned (``repro.bench.lint/v1``), to
``benchmarks/results/BENCH_lint.json`` and are validated by
``tools/check_bench_schema.py``.  The acceptance bar for the cache is
``speedup_cold_over_warm >= 10``.

Modes
-----
``--quick``
    60 campaigns — seconds end to end, right for CI smoke.
full (default)
    500 campaigns — the shape the acceptance number is quoted for.
"""

from __future__ import annotations

import argparse
import gc
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter  # noqa: E402
from repro.cheetah.directory import CampaignDirectory  # noqa: E402
from repro.lint import lint_path  # noqa: E402
from repro.lint.cache import CACHE_FILENAME  # noqa: E402

SCHEMA = "repro.bench.lint/v1"
RESULTS = REPO / "benchmarks" / "results"
DEFAULT_OUTPUT = RESULTS / "BENCH_lint.json"

MODES = {
    "quick": {"n_campaigns": 60, "rounds": 3},
    "full": {"n_campaigns": 500, "rounds": 3},
}

#: Per-campaign analysis module: realistic post-processing size (a few
#: hundred lines, a dozen functions) so a cold lint pays a real AST +
#: interprocedural-analysis cost, while the warm path only hashes bytes.
ANALYSIS_HEADER = '''"""Post-processing for campaign {name}."""

import json
import os


def load(run_dir):
    with open(os.path.join(run_dir, "result.json")) as fh:
        return json.load(fh)


def summarize(run_dirs):
    rows = []
    for run_dir in run_dirs:
        payload = load(run_dir)
        rows.append((run_dir, payload.get("value")))
    return rows
'''

ANALYSIS_STAGE = '''

def stage_{i}(params, run_dir):
    acc = 0.0
    for key in sorted(params):
        value = params[key]
        if isinstance(value, (int, float)):
            acc += value * {i}
        else:
            acc += len(str(value))
    path = os.path.join(run_dir, "stage_{i}.json")
    with open(path, "w") as fh:
        json.dump({{"stage": {i}, "acc": acc}}, fh)
    return acc


def merge_{i}(rows):
    merged = {{}}
    for run_dir, value in rows:
        bucket = merged.setdefault(run_dir, [])
        bucket.append((value, {i}))
    return merged
'''


def analysis_source(name: str, stages: int) -> str:
    parts = [ANALYSIS_HEADER.format(name=name)]
    parts += [ANALYSIS_STAGE.format(i=i) for i in range(stages)]
    return "".join(parts)

LAUNCH_TEMPLATE = """#!/bin/sh
# launcher for {name}
exec python analysis.py "$@"
"""


def build_catalog(root: Path, n_campaigns: int) -> list[Path]:
    """Materialize ``n_campaigns`` real campaign end points under root."""
    entries = []
    for i in range(n_campaigns):
        name = f"camp-{i:04d}"
        camp = Campaign(name, app=AppSpec("bench-app"))
        group = camp.sweep_group("g", nodes=1, walltime=600.0)
        group.add(Sweep([SweepParameter("x", range(1 + i % 3))]))
        directory = CampaignDirectory(root, camp.to_manifest())
        directory.create()
        (directory.root / "analysis.py").write_text(analysis_source(name, stages=12))
        (directory.root / "launch.sh").write_text(LAUNCH_TEMPLATE.format(name=name))
        entries.append(directory.root)
    return entries


def drop_caches(root: Path) -> None:
    for cache in root.rglob(CACHE_FILENAME):
        cache.unlink()


def timed_lint(root: Path) -> tuple[float, int]:
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        report = lint_path(root)
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return elapsed, len(report)


def run_bench(mode: str) -> dict:
    shape = MODES[mode]
    n_campaigns, rounds = shape["n_campaigns"], shape["rounds"]
    workdir = Path(tempfile.mkdtemp(prefix="bench-lint-"))
    try:
        catalog = workdir / "catalog"
        catalog.mkdir()
        entries = build_catalog(catalog, n_campaigns)

        best = {"cold": float("inf"), "warm": float("inf"), "touched": float("inf")}
        findings = 0
        for round_index in range(rounds):
            drop_caches(catalog)
            cold, findings = timed_lint(catalog)
            warm, warm_findings = timed_lint(catalog)
            assert warm_findings == findings, "cache changed the verdict"
            # touch one campaign's source: near-O(changed) re-lint
            victim = entries[round_index % len(entries)] / "analysis.py"
            victim.write_text(victim.read_text() + f"\n# round {round_index}\n")
            touched, _ = timed_lint(catalog)
            best["cold"] = min(best["cold"], cold)
            best["warm"] = min(best["warm"], warm)
            best["touched"] = min(best["touched"], touched)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "mode": mode,
        "workload": {
            "name": "generated-campaign-catalog",
            "n_campaigns": n_campaigns,
            "sources_per_campaign": 2,
            "findings": findings,
        },
        "protocol": (
            f"gc-disabled best-of-{rounds}; cold = caches dropped, warm = "
            "unchanged digests, touched = one campaign source modified"
        ),
        "rounds": rounds,
        "cold_seconds": best["cold"],
        "warm_seconds": best["warm"],
        "touched_seconds": best["touched"],
        "campaigns_per_sec_cold": n_campaigns / best["cold"],
        "campaigns_per_sec_warm": n_campaigns / best["warm"],
        "speedup_cold_over_warm": best["cold"] / best["warm"],
        "speedup_cold_over_touched": best["cold"] / best["touched"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI shape (60 campaigns)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"where to write the JSON (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    result = run_bench(mode)
    print(
        f"[{mode}] {result['workload']['n_campaigns']} campaigns: "
        f"cold {result['cold_seconds']:.3f}s, warm {result['warm_seconds']:.3f}s "
        f"({result['speedup_cold_over_warm']:.1f}x), one-touched "
        f"{result['touched_seconds']:.3f}s "
        f"({result['speedup_cold_over_touched']:.1f}x)"
    )

    output = args.output or DEFAULT_OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    document = {"schema": SCHEMA, "modes": {}}
    if output.exists():
        try:
            existing = json.loads(output.read_text())
            if existing.get("schema") == SCHEMA:
                document = existing
        except (json.JSONDecodeError, OSError):
            pass
    document.setdefault("modes", {})[mode] = result
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"[wrote {output} ({mode} entry)]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
