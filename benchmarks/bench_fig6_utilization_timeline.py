"""Figure 6 — workflow timeline: original set-synchronized vs Cheetah.

Paper observation: "The original workflow required all runs within a set
to complete before moving to the next set, resulting in idle nodes.  This
is eliminated using Cheetah."  Expected shape: the static baseline shows
large idle fractions (nodes waiting at set barriers behind stragglers);
the dynamic pilot keeps nodes busy until the work runs out.

The timed rounds also run once under a
:class:`~repro.observability.TraceRecorder` (outside the timer), so each
bench run leaves ``results/fig6_utilization_timeline.trace.json`` — a
Chrome ``trace_event`` capture of both executors, loadable at
``about:tracing`` (one row per node; see ``docs/observability.md``).

With ``--report`` the capture is additionally analyzed
(:mod:`repro.observability.analysis`) into
``results/fig6_utilization_timeline.report.json`` — the candidate side of
the CI regression gate, diffed against the committed quick-mode baseline
``results/fig6_quick_baseline.report.json`` by
``python -m repro.observability diff ... --fail-on-regression``.  The
simulation is seeded, so identical parameters reproduce the baseline
bit-for-bit.
"""

import json

from repro.experiments import fig6_timeline, run_with_trace

FIG6_KWARGS = {"n_tasks": 120, "nodes": 20, "walltime": 7200.0, "seed": 21}
FIG6_QUICK_KWARGS = {"n_tasks": 40, "nodes": 8, "walltime": 7200.0, "seed": 21}


def test_fig6_utilization_timeline(benchmark, save_result, results_dir, quick, report_mode):
    kwargs = FIG6_QUICK_KWARGS if quick else FIG6_KWARGS
    result = benchmark.pedantic(
        fig6_timeline, kwargs=kwargs, rounds=1 if quick else 2, iterations=1
    )
    timelines = result.extra["timelines"]
    text = result.to_text() + "\n\n" + "\n\n".join(
        f"-- {label} --\n{tl}" for label, tl in timelines.items()
    )
    save_result("fig6_utilization_timeline", text)

    # One untimed traced run: persist the Chrome trace + metrics snapshot.
    _, recorder = run_with_trace(fig6_timeline, **kwargs)
    recorder.validate()
    trace_path = recorder.write_chrome_trace(
        results_dir / "fig6_utilization_timeline.trace.json"
    )
    metrics_path = trace_path.with_suffix(".metrics.json")
    metrics_path.write_text(json.dumps(recorder.metrics.snapshot(), indent=2) + "\n")
    print(f"[trace: {len(recorder.events)} events -> {trace_path}]")
    assert recorder.metrics.snapshot()["counters"]["tasks.launched"] > 0

    if report_mode:
        from repro.observability.analysis import analyze_events, write_reports

        reports = analyze_events(recorder.events)
        report_path = write_reports(
            results_dir / "fig6_utilization_timeline.report.json", reports
        )
        print(f"[{len(reports)} report(s) -> {report_path}]")
        assert reports, "traced fig6 run must yield campaign reports"

    idle = result.extra["idle"]
    assert idle["static"] > 2 * idle["dynamic"], (
        "set barriers must idle nodes far more than dynamic scheduling"
    )


def test_fig6_simulation_cost(benchmark):
    """One full 120-task allocation simulation costs milliseconds — cheap
    enough to sweep."""
    from repro.experiments import fig6_timeline as run

    result = benchmark.pedantic(
        run, kwargs={"n_tasks": 60, "nodes": 10, "walltime": 3600.0, "seed": 5},
        rounds=3, iterations=1,
    )
    assert result.rows
