"""Real execution — thread pool vs process pool on CPU-bound Python.

The scaling claim behind the ``local-processes`` backend: a GIL-holding
app serializes on the thread pool, so the process pool should win
roughly linearly in the core count.  On a single-core box there is
nothing to win — the speedup assertion is gated on ``os.cpu_count()``
and the table still records the measured tie.
"""

import os

from repro.experiments import realexec_scaling


def test_realexec_scaling(benchmark, save_result, quick):
    n_runs = 4 if quick else 8
    iters = 50_000 if quick else 200_000
    result = benchmark.pedantic(
        realexec_scaling,
        kwargs={"n_runs": n_runs, "iters": iters},
        rounds=1,
        iterations=1,
    )
    save_result("realexec_scaling", result.to_text())

    elapsed = result.extra["elapsed"]
    assert elapsed["threads"] > 0 and elapsed["processes"] > 0

    # The win only exists where there are cores to win on.
    if (os.cpu_count() or 1) >= 2 and result.extra["workers"] >= 2:
        assert result.extra["speedup"] > 1.2, (
            f"processes should beat threads on CPU-bound work with "
            f"{os.cpu_count()} cores, got {result.extra['speedup']:.2f}x"
        )
