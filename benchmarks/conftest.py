"""Benchmark-suite helpers.

Every figure bench saves its rendered table under ``benchmarks/results/``
so the paper comparison survives the captured-stdout of a quiet pytest
run; it also prints, so ``pytest benchmarks/ --benchmark-only -s`` shows
the tables live.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: single benchmark round, scaled-down problem sizes",
    )
    parser.addoption(
        "--report",
        action="store_true",
        default=False,
        dest="trace_report",
        help="also analyze each traced bench run and write per-campaign "
        "trace analytics reports under benchmarks/results/ "
        "(diff them with `python -m repro.observability diff`)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the suite runs in ``--quick`` smoke mode (CI)."""
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def report_mode(request) -> bool:
    """True when ``--report`` asks benches to write trace analytics reports."""
    return request.config.getoption("trace_report")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Persist (and echo) a figure reproduction table."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
