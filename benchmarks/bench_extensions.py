"""Extension experiments beyond the paper's figures.

These exercise the paper's *motivating* claims that its own evaluation
leaves qualitative: the failure-recovery value of checkpoint schedules
(§V-B's motivation), the FAIR-principle alignment named in the conclusion
(R1.2 / R1.3 / I3), and the §II-C codesign catalog at scale.
"""

import numpy as np

from repro._util import format_table


def test_ext_checkpoint_value_under_failures(benchmark, save_result):
    """Run-to-completion wall time vs checkpoint cadence on a flaky machine.

    Expected shape: a U-curve — checkpointing too rarely loses work to
    failures, too often drowns in I/O; the overhead-budget policy lands
    near the sweet spot without hand-tuning the interval."""
    from repro.apps.simulation.checkpoint import FixedIntervalPolicy, OverheadBudgetPolicy
    from repro.apps.simulation.faulty import run_to_completion
    from repro.apps.simulation.run import RunConfig

    config = RunConfig(grid_n=16)

    def run():
        rows = []
        for policy in (
            FixedIntervalPolicy(1),
            FixedIntervalPolicy(5),
            FixedIntervalPolicy(25),
            OverheadBudgetPolicy(0.10),
        ):
            report = run_to_completion(config, policy, job_mttf=2500.0, seed=12)
            rows.append(
                (
                    report.policy_name,
                    f"{report.total_seconds:.0f}s",
                    report.failures,
                    report.redone_steps,
                    f"{report.waste_fraction:.1%}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ext_failure_recovery",
        "Extension — run-to-completion under failures (job MTTF 2500s)\n"
        + format_table(
            ("policy", "wall time", "failures", "redone steps", "waste"), rows
        ),
    )
    seconds = {r[0]: float(r[1][:-1]) for r in rows}
    # Sparse checkpointing must redo more work than frequent checkpointing.
    redone = {r[0]: r[3] for r in rows}
    assert redone["fixed-interval(25)"] >= redone["fixed-interval(5)"]
    # The budget policy lands within 25% of the best hand-tuned interval.
    best_fixed = min(v for k, v in seconds.items() if k.startswith("fixed"))
    assert seconds["overhead-budget(10%)"] <= 1.25 * best_fixed


def test_ext_fair_alignment(benchmark, save_result):
    """FAIR sub-principle alignment before/after the GWAS refactoring."""
    from repro.apps.gwas.workflow import workflow_components_before_after
    from repro.gauges import Alignment, assess, fair_alignment, fair_report

    before, after = workflow_components_before_after()

    def run():
        return (
            fair_alignment(assess(before).profile),
            fair_alignment(assess(after).profile),
        )

    alignment_before, alignment_after = benchmark.pedantic(run, rounds=3, iterations=1)
    text = (
        "Extension — FAIR alignment, GWAS workflow before/after Skel refactor\n"
        + format_table(
            ("principle", "before", "after"),
            [
                (p, alignment_before[p].value, alignment_after[p].value)
                for p in alignment_before
            ],
        )
        + "\n\n"
        + fair_report(assess(after).profile)
    )
    save_result("ext_fair_alignment", text)
    assert all(a is Alignment.UNMET for a in alignment_before.values())
    # The paper's named principles are met after the refactor.
    for principle in ("R1.2", "R1.3", "I3"):
        assert alignment_after[principle] is Alignment.MET, principle


def test_ext_staging_raises_checkpoint_budget(benchmark, save_result):
    """Data staging under the overhead-budget policy (§VI's ADIOS staging).

    A burst buffer shrinks the *application-visible* write time, so the
    same overhead budget affords more checkpoints — lowering expected
    lost work at identical declared cost."""
    from repro.apps.simulation.checkpoint import CheckpointMiddleware, OverheadBudgetPolicy
    from repro.apps.simulation.restart import expected_lost_work
    from repro.cluster.filesystem import ParallelFilesystem
    from repro.cluster.staging import StagingArea, StagingSpec

    def run_one(make_fs):
        mw = CheckpointMiddleware(
            make_fs(), OverheadBudgetPolicy(0.10), checkpoint_bytes=int(1e12)
        )
        clock = 0.0
        for _ in range(50):
            clock += 30.0
            clock += mw.end_of_timestep(30.0, now=clock)
        timesteps = [t for t, _s in mw.write_times]
        return mw.stats.checkpoints_written, expected_lost_work(timesteps, 50)

    def run():
        direct = run_one(lambda: ParallelFilesystem(peak_bandwidth=5e10, load_model=None))
        staged = run_one(
            lambda: StagingArea(
                ParallelFilesystem(peak_bandwidth=5e10, load_model=None),
                StagingSpec(ingest_bandwidth=5e11, capacity_bytes=5e12),
            )
        )
        return direct, staged

    (direct_n, direct_lost), (staged_n, staged_lost) = benchmark.pedantic(
        run, rounds=2, iterations=1
    )
    save_result(
        "ext_staging",
        "Extension — data staging at a fixed 10% overhead budget\n"
        + format_table(
            ("I/O path", "checkpoints (of 50)", "E[lost steps]"),
            [
                ("direct to PFS", direct_n, f"{direct_lost:.1f}"),
                ("staged (burst buffer)", staged_n, f"{staged_lost:.1f}"),
            ],
        ),
    )
    assert staged_n > direct_n
    assert staged_lost < direct_lost


def test_ext_manual_effort_gauge(benchmark, save_result):
    """§V-D's reusability gauge: "the manual effort required to set up,
    track, and submit additional runs" — priced for both workflow styles
    at the paper's campaign size."""
    from repro.apps.irf.workflow import manual_effort_comparison

    def run():
        return manual_effort_comparison(1606, nodes=20)

    original, cheetah = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [
        (
            e.workflow,
            f"{e.setup_minutes:.0f}",
            f"{e.tracking_minutes:.0f}",
            f"{e.failure_minutes:.0f}",
            f"{e.resubmission_minutes:.0f}",
            f"{e.total_minutes:.0f}",
        )
        for e in (original, cheetah)
    ]
    save_result(
        "ext_manual_effort",
        "Extension — manual effort per 1606-feature campaign (minutes)\n"
        + format_table(
            ("workflow", "setup", "tracking", "failures", "resubmission", "total"),
            rows,
        ),
    )
    assert original.total_minutes > 10 * cheetah.total_minutes


def test_ext_cross_allocation_restart(benchmark, save_result):
    """Checkpoint-restart across batch jobs: short allocations punish
    sparse checkpointing (lost tails, re-computation); the budget policy
    adapts without per-machine tuning."""
    from repro.apps.simulation import (
        FixedIntervalPolicy,
        OverheadBudgetPolicy,
        RunConfig,
        run_across_allocations,
    )

    config = RunConfig(grid_n=16)

    def run():
        rows = []
        for policy in (
            FixedIntervalPolicy(2),
            FixedIntervalPolicy(10),
            OverheadBudgetPolicy(0.10),
        ):
            report = run_across_allocations(
                config, policy, walltime=600.0, queue_wait=300.0, seed=3
            )
            rows.append(
                (
                    report.policy_name,
                    report.allocations_used,
                    report.lost_steps,
                    report.checkpoints_written,
                    f"{report.total_wall_seconds / 3600:.2f}h",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ext_cross_allocation",
        "Extension — 50-step run across 10-minute allocations "
        "(queue wait 5 min)\n"
        + format_table(
            ("policy", "allocations", "lost steps", "checkpoints", "wall time"), rows
        ),
    )
    by_policy = {r[0]: r for r in rows}
    assert by_policy["fixed-interval(2)"][2] <= by_policy["fixed-interval(10)"][2]


def test_ext_structure_corrected_gwas(benchmark, save_result):
    """The §II-A science pipeline hardened: population-structure
    confounding inflates an uncorrected scan; genotype-PC covariates
    restore calibration without losing the real signal."""
    from repro.apps.gwas import genotype_pcs, gwas_scan, recovery_rate, structured_gwas

    def run():
        G, y, causal, _ancestry = structured_gwas(
            n_samples=500, n_snps=400, n_causal=5, fst=0.2,
            trait_ancestry_effect=1.5, heritability=0.4, seed=9,
        )
        raw = gwas_scan(G, y)
        adjusted = gwas_scan(G, y, covariates=genotype_pcs(G, k=2))
        return causal, raw, adjusted

    causal, raw, adjusted = benchmark.pedantic(run, rounds=2, iterations=1)
    rows = [
        (
            label,
            len(scan.significant(0.05)),
            f"{recovery_rate(scan, causal):.0%}",
        )
        for label, scan in (("uncorrected", raw), ("PC-adjusted", adjusted))
    ]
    save_result(
        "ext_structured_gwas",
        "Extension — GWAS under population structure (5 causal SNPs planted)\n"
        + format_table(("scan", "significant hits", "causal recovered"), rows),
    )
    # the uncorrected scan reports more hits (inflation), the adjusted one
    # keeps the real signal
    assert rows[0][1] >= rows[1][1]
    assert recovery_rate(adjusted, causal) >= 0.6


def test_ext_catalog_query_scale(benchmark, save_result):
    """Catalog queries stay fast at a 10k-run codesign campaign."""
    from repro.cheetah import CampaignCatalog, Direction, Objective

    rng = np.random.default_rng(0)
    catalog = CampaignCatalog("scale")
    buffers = [1, 2, 4, 8]
    for i in range(10_000):
        buffer = buffers[i % 4]
        catalog.add(
            f"run-{i:05d}",
            {"buffer": buffer, "ranks": 2 ** (i % 6)},
            {
                "runtime_seconds": 100.0 / buffer + float(rng.normal(0, 1)),
                "storage_bytes": 1e9 * buffer,
            },
        )

    fast = Objective("fast", "runtime_seconds", Direction.MINIMIZE)

    def queries():
        best = catalog.best(fast)
        impact = catalog.parameter_impact("buffer", "runtime_seconds")
        return best, impact

    best, impact = benchmark(queries)
    assert best.parameters["buffer"] == 8
    assert impact["effect"] > 0.5
    save_result(
        "ext_catalog_scale",
        "Extension — 10k-run catalog: dominant parameter for runtime is "
        f"'buffer' (effect {impact['effect']:.2f}); best config {best.parameters}",
    )
