"""Figure 1 — the six-gauge tier matrix and exemplar assessments.

Regenerates the gauge-property matrix of Figure 1 and assesses the GWAS
workflow before/after its Skel refactoring on all six axes.  The bench
also measures the cost of a mechanical assessment, since "machine
actionable" only matters if acting is cheap.
"""

from repro.apps.gwas.workflow import workflow_components_before_after
from repro.experiments import fig1_gauge_matrix
from repro.gauges import assess


def test_fig1_gauge_matrix(benchmark, save_result):
    result = benchmark.pedantic(fig1_gauge_matrix, rounds=3, iterations=1)
    save_result("fig1_gauge_matrix", result.to_text())
    profiles = result.extra["assessments"]
    assert profiles["skel+cheetah workflow"].dominates(profiles["black-box script"])
    assert len({row[0] for row in result.rows}) == 6


def test_assessment_throughput(benchmark):
    """Mechanical assessment of a fully described component is microseconds."""
    _before, after = workflow_components_before_after()
    result = benchmark(assess, after)
    assert result.profile.as_vector() != (0,) * 6
