"""Figure 7 — iRF-LOOP campaign throughput (the paper's >5x headline).

Paper setup: the 2019 ACS census (1606 features), parameter sweep over
every feature, 2-hour allocations of 20 nodes on Summit; "We observe over
5x improvement in total runtime using the Cheetah-Savanna toolsuite."

Substitutions: simulated 20-node cluster (DESIGN.md §5), heavy-tailed
per-feature run durations, 1-hour manual curation gap between the
original workflow's resubmissions.  Expected shape: total-runtime
improvement ≥ 5x; params-per-allocation improvement of several x.
"""

from repro.experiments import fig7_campaign


def test_fig7_irf_campaign(benchmark, save_result):
    result = benchmark.pedantic(fig7_campaign, rounds=1, iterations=1)
    save_result("fig7_irf_campaign", result.to_text())
    assert result.extra["speedup"] >= 4.5, (
        f"total-runtime improvement {result.extra['speedup']:.1f}x below the "
        "paper's >5x band"
    )
    assert result.extra["per_alloc_speedup"] > 2.5
    for r in result.extra["results"].values():
        assert r.all_done, "both workflows must eventually finish the campaign"


def test_fig7_seed_robustness(benchmark, save_result):
    """The >5x shape is not a seed artifact: check three seeds."""

    def sweep():
        out = []
        for seed in (33, 77, 101):
            result = fig7_campaign(
                n_features=400, nodes=20, walltime=7200.0, max_allocations=60, seed=seed
            )
            out.append(
                (seed, result.extra["speedup"], result.extra["per_alloc_speedup"])
            )
        return out

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "Figure 7 robustness (400-feature campaign)\n" + "\n".join(
        f"seed={s}: total-runtime {x:.1f}x, per-allocation {y:.1f}x"
        for s, x, y in speedups
    )
    save_result("fig7_seed_robustness", text)
    assert all(x > 3.0 for _s, x, _y in speedups)
