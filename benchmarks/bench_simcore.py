#!/usr/bin/env python
"""Simulator-core throughput benchmark: the perf-trajectory anchor.

Measures three things and writes them, schema-versioned, to
``benchmarks/results/BENCH_simcore.json``:

- **simulated tasks/sec** of the default vectorized engine
  (``repro.savanna._vector``) on the Figure-6 campaign workload — both
  executors (static set-synchronized + dynamic pilot), GC disabled,
  best-of-N rounds;
- the same workload through the **per-event reference engine**
  (``REPRO_SIMCORE=event``), with rounds *interleaved* vector/event so
  machine drift hits both engines equally;
- **report-fold latency**: events/sec of the streaming analytics builder
  (:class:`~repro.observability.analysis.StreamingCampaignReport`)
  folding the committed fig6 Chrome trace.

Plus peak RSS for the whole benchmark process.

Modes
-----
``--quick``
    The committed Figure-6 shape (120 tasks / 20 nodes).  Small enough
    for CI; the per-event dispatch overhead is only partially exposed at
    this scale.
full (default)
    The fig6 campaign scaled to production size (20 000 tasks / 500
    nodes, ~40 000 attempts).  This is where the vectorized core's
    headline speedup vs the pre-change engine is measured.

``--check BASELINE.json`` re-runs the current mode and gates against a
committed baseline: exit 1 if tasks/sec regressed more than
``--tolerance`` (default 20%), a loud warning — not a failure — if it
*improved* more than the tolerance without the baseline being
regenerated (an unexplained speedup usually means the workload changed,
not the machine).

Protocol notes
--------------
GC is collected then disabled around every timed region (the Task ↔
TaskAttempt reference cycles otherwise trigger gen-2 collections mid
run, adding double-digit-percent noise).  Timings are best-of-N because
throughput is noise-bounded from above: the fastest round is the one
least perturbed by the machine.  The ``prechange`` reference numbers
were measured at commit 06aa00e (the last commit before the vectorized
core landed) with this same script's workload, protocol, and
interleaved A/B runs on the development machine; they are carried here
so ``speedup_vs_prechange`` stays meaningful after the event engine
itself picks up optimizations.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cluster.cluster import ClusterSpec, SimulatedCluster  # noqa: E402
from repro.cluster.job import Task  # noqa: E402
from repro.observability.analysis import StreamingCampaignReport  # noqa: E402
from repro.observability.recorder import events_from_trace  # noqa: E402
from repro.savanna.pilot import PilotExecutor  # noqa: E402
from repro.savanna.static import StaticSetExecutor  # noqa: E402

SCHEMA = "repro.bench.simcore/v1"
RESULTS = REPO / "benchmarks" / "results"
DEFAULT_OUTPUT = RESULTS / "BENCH_simcore.json"
FOLD_TRACE = RESULTS / "fig6_utilization_timeline.trace.json"

#: Campaign seeds shared with the fig6 experiment drivers.
SEED = 21

MODES = {
    # The fig6 campaign family at a CI-friendly size: ~16k attempts, a
    # ~20 ms vector timed region (large enough that the +-20% CI gate
    # does not flap on timer noise), a few seconds end to end.
    "quick": {"n_tasks": 8_000, "nodes": 100, "walltime": 1.0e6, "rounds": 7},
    # The same campaign family at production scale: ~40k task attempts
    # across the two executors per round.
    "full": {"n_tasks": 20_000, "nodes": 500, "walltime": 1.0e6, "rounds": 5},
}

#: Pre-change engine throughput, measured at commit 06aa00e (the last
#: commit before the vectorized core) with this protocol — GC-off,
#: best-of-N, interleaved A/B subprocess runs against the current tree
#: on the development machine.  Session-to-session machine drift is
#: +-15-20%, so the full-shape value is the *median of per-session
#: bests* across eleven interleaved sessions (per-session bests ranged
#: 64k-77k tasks/s) — the central estimate of the old engine's speed,
#: not either tail.  The quick-shape value is the best observed in its
#: interleaved session.
PRECHANGE = {
    "commit": "06aa00e",
    "quick_tasks_per_sec": 84_160.0,
    "full_tasks_per_sec": 73_153.0,
    "protocol": (
        "gc-disabled best-of-N wall time over both executors; rounds "
        "interleaved with the candidate tree in alternating subprocesses; "
        "full-shape reference is the median of per-session bests"
    ),
}


def irf_tasks(n: int, seed: int = SEED) -> list[Task]:
    """The fig6 iRF sweep: lognormal durations around a 600 s median."""
    rng = np.random.default_rng(seed)
    durations = rng.lognormal(mean=np.log(600.0), sigma=0.35, size=n)
    return [Task(name=f"irf-{i:05d}", duration=float(d)) for i, d in enumerate(durations)]


def one_round(n_tasks: int, nodes: int, walltime: float) -> tuple[float, int]:
    """Run both executors over fresh state; return (seconds, attempts)."""
    spec = ClusterSpec(
        nodes=nodes, queue_sigma=0.0, queue_median_wait=120.0, node_mttf=2.0e6
    )
    c_static = SimulatedCluster(spec, seed=SEED)
    c_pilot = SimulatedCluster(spec, seed=SEED)
    t_static = irf_tasks(n_tasks)
    t_pilot = irf_tasks(n_tasks)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        r1 = StaticSetExecutor(c_static, set_gap=60.0).run(
            t_static, nodes=nodes, walltime=walltime, max_allocations=1
        )
        r2 = PilotExecutor(c_pilot).run(
            t_pilot, nodes=nodes, walltime=walltime, max_allocations=1
        )
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    attempts = sum(len(o.attempts) for o in r1.outcomes) + sum(
        len(o.attempts) for o in r2.outcomes
    )
    return elapsed, attempts


def measure_engines(n_tasks: int, nodes: int, walltime: float, rounds: int):
    """Interleaved best-of-N for the vector and event engines."""
    best = {"vector": float("inf"), "event": float("inf")}
    attempts = 0
    for _ in range(rounds):
        for engine in ("vector", "event"):
            if engine == "event":
                os.environ["REPRO_SIMCORE"] = "event"
            else:
                os.environ.pop("REPRO_SIMCORE", None)
            elapsed, attempts = one_round(n_tasks, nodes, walltime)
            best[engine] = min(best[engine], elapsed)
    os.environ.pop("REPRO_SIMCORE", None)
    return best, attempts


def measure_report_fold() -> dict:
    """Streaming-analytics fold rate over the committed fig6 trace."""
    if not FOLD_TRACE.exists():
        return {"trace": None, "events": 0, "seconds": None, "events_per_sec": None}
    events = events_from_trace(FOLD_TRACE)
    builder = StreamingCampaignReport()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        builder.on_batch(events)
        reports = builder.reports()
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return {
        "trace": FOLD_TRACE.name,
        "events": len(events),
        "seconds": elapsed,
        "events_per_sec": len(events) / elapsed if elapsed > 0 else None,
        "campaigns": len(reports),
    }


def run_bench(mode: str) -> dict:
    shape = MODES[mode]
    n_tasks, nodes, walltime, rounds = (
        shape["n_tasks"],
        shape["nodes"],
        shape["walltime"],
        shape["rounds"],
    )
    best, attempts = measure_engines(n_tasks, nodes, walltime, rounds)
    tasks_per_sec = attempts / best["vector"]
    event_tasks_per_sec = attempts / best["event"]
    prechange_ref = PRECHANGE[f"{mode}_tasks_per_sec"]
    # ru_maxrss is KiB on Linux, bytes on macOS; normalize to bytes.
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_rss_bytes = rss if sys.platform == "darwin" else rss * 1024
    return {
        "mode": mode,
        "workload": {
            "name": "fig6-irf-campaign" + ("" if mode == "quick" else "-scaled"),
            "n_tasks": n_tasks,
            "nodes": nodes,
            "walltime": walltime,
            "executors": ["static-set(set_gap=60)", "pilot"],
            "seed": SEED,
        },
        "protocol": f"gc-disabled best-of-{rounds}, vector/event rounds interleaved",
        "rounds": rounds,
        "attempts": attempts,
        "best_seconds": best["vector"],
        "tasks_per_sec": tasks_per_sec,
        "event_tasks_per_sec": event_tasks_per_sec,
        "speedup_vs_event": tasks_per_sec / event_tasks_per_sec,
        "prechange": {
            "commit": PRECHANGE["commit"],
            "tasks_per_sec": prechange_ref,
            "protocol": PRECHANGE["protocol"],
        },
        "speedup_vs_prechange": tasks_per_sec / prechange_ref,
        "peak_rss_bytes": peak_rss_bytes,
        "report_fold": measure_report_fold(),
    }


def check_against(result: dict, baseline_path: Path, tolerance: float) -> int:
    """Gate ``result`` against a committed baseline; returns exit code."""
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != SCHEMA:
        print(
            f"FAIL: baseline {baseline_path} has schema "
            f"{baseline.get('schema')!r}, expected {SCHEMA!r}"
        )
        return 1
    mode_baseline = baseline.get("modes", {}).get(result["mode"])
    if mode_baseline is None:
        print(
            f"FAIL: baseline {baseline_path} has no {result['mode']!r} "
            "entry; regenerate the baseline"
        )
        return 1
    base = mode_baseline["tasks_per_sec"]
    cur = result["tasks_per_sec"]
    ratio = cur / base
    line = (
        f"tasks/sec: current {cur:,.0f} vs baseline {base:,.0f} "
        f"({ratio - 1.0:+.1%} vs baseline, tolerance +-{tolerance:.0%})"
    )
    if ratio < 1.0 - tolerance:
        print(f"FAIL: {line}")
        print(
            "The simulator core regressed beyond tolerance. If this is "
            "expected (intentional trade-off), regenerate the baseline: "
            "python benchmarks/bench_simcore.py --quick"
        )
        return 1
    if ratio > 1.0 + tolerance:
        print(f"WARN: {line}")
        print(
            "Unexplained speedup beyond tolerance — the workload or the "
            "machine class likely changed. Regenerate the committed "
            "baseline so the gate keeps teeth."
        )
        return 0
    print(f"OK: {line}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI shape (8000 tasks / 100 nodes)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"where to write the JSON (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed BENCH_simcore.json; exit 1 on "
        "regression beyond tolerance, warn on unexplained speedup",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="relative tasks/sec tolerance for --check (default 0.20)",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    result = run_bench(mode)
    print(
        f"[{mode}] {result['attempts']} attempts in {result['best_seconds']:.3f}s "
        f"best-of-{result['rounds']}: {result['tasks_per_sec']:,.0f} tasks/s "
        f"(event engine {result['event_tasks_per_sec']:,.0f}, "
        f"{result['speedup_vs_event']:.2f}x; pre-change reference "
        f"{result['prechange']['tasks_per_sec']:,.0f} @ "
        f"{result['prechange']['commit']}, "
        f"{result['speedup_vs_prechange']:.2f}x)"
    )
    fold = result["report_fold"]
    if fold["events"]:
        print(
            f"[report-fold] {fold['events']} events in {fold['seconds']:.4f}s "
            f"({fold['events_per_sec']:,.0f} events/s, "
            f"{fold['campaigns']} campaign(s))"
        )
    print(f"[rss] peak {result['peak_rss_bytes'] / 1e6:,.1f} MB")

    exit_code = 0
    if args.check is not None:
        exit_code = check_against(result, args.check, args.tolerance)

    # The committed file carries one entry per mode (full = the headline
    # speedup evidence, quick = the CI gate baseline); writing one mode
    # merges into the other's entry instead of discarding it.  Under
    # --check the fresh result is only written when --output names an
    # explicit destination (CI uploads it as an artifact) so a gate run
    # never clobbers the committed baseline it just compared against.
    if args.check is None or args.output is not None:
        output = args.output or DEFAULT_OUTPUT
        output.parent.mkdir(parents=True, exist_ok=True)
        document = {"schema": SCHEMA, "modes": {}}
        if output.exists():
            try:
                existing = json.loads(output.read_text())
                if existing.get("schema") == SCHEMA:
                    document = existing
            except (json.JSONDecodeError, OSError):
                pass
        document.setdefault("modes", {})[mode] = result
        output.write_text(json.dumps(document, indent=2) + "\n")
        print(f"[wrote {output} ({mode} entry)]")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
