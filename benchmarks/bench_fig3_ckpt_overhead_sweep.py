"""Figure 3 — checkpoints written vs permitted I/O overhead.

Paper setup: reaction-diffusion benchmark on Summit, 4096 MPI processes
over 128 nodes, 50 timesteps at ~1 TB each; checkpoints issued only while
the observed I/O overhead stays within the declared budget.  Expected
shape: checkpoint count increases monotonically with the permitted
overhead and saturates at the 50-step ceiling.
"""

from repro.experiments import fig3_overhead_sweep


def test_fig3_overhead_sweep(benchmark, save_result):
    result = benchmark.pedantic(fig3_overhead_sweep, rounds=2, iterations=1)
    save_result("fig3_ckpt_overhead_sweep", result.to_text())
    series = result.extra["series"]
    counts = [n for _o, n in series]
    assert counts == sorted(counts), "checkpoint count must rise with the budget"
    assert counts[-1] > counts[0]
    assert all(n <= 50 for n in counts)


def test_fig3_policy_decision_cost(benchmark):
    """The per-timestep policy decision is nanosecond-scale bookkeeping."""
    from repro.apps.simulation.checkpoint import CheckpointStats, OverheadBudgetPolicy

    policy = OverheadBudgetPolicy(0.10)
    stats = CheckpointStats(timestep=25, compute_seconds=750.0, io_seconds=60.0)
    decision = benchmark(policy.should_checkpoint, stats, 30.0)
    assert decision in (True, False)
