#!/usr/bin/env python
"""Telemetry-plane overhead benchmark: the same fleet, plane on vs. off.

``docs/telemetry.md`` promises the live telemetry plane costs less than
5% end to end.  This benchmark earns that number: it drives an identical
fleet of campaigns through one ``CampaignService`` twice —

- **off**: telemetry disabled (the default — no sampler, no socket,
  no log subscriber, no profiler), and
- **on**: the whole plane at once — ``serve_telemetry=True`` (sampler
  folding every bus event + HTTP server bound), a ``JsonLogSubscriber``
  serializing every event to ``os.devnull``, ``profile_interval=`` on
  every submission streaming ``worker.sample`` readings, and one
  ``/metrics`` scrape per round while work is in flight —

and records best-of-N wall clock for each, plus evidence the plane
actually ran (events folded, log lines written, worker samples seen).

Results go, schema-versioned (``repro.bench.telemetry/v1``), to
``benchmarks/results/BENCH_telemetry.json`` and are validated by
``tools/check_bench_schema.py``, which enforces the acceptance bar:
``overhead_pct < 5`` (negative is fine — that is measurement noise
saying the plane is free).

Modes
-----
``--quick``
    4 campaigns x 3 tenants, seconds end to end — CI smoke.
full (default)
    12 campaigns, the shape the committed number is quoted for.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cheetah import AppSpec, Campaign, Sweep, SweepParameter  # noqa: E402
from repro.observability.live import JsonLogSubscriber  # noqa: E402
from repro.savanna import CampaignService  # noqa: E402

SCHEMA = "repro.bench.telemetry/v1"
RESULTS = REPO / "benchmarks" / "results"
DEFAULT_OUTPUT = RESULTS / "BENCH_telemetry.json"

TENANTS = ("lab-a", "lab-b", "lab-c")

MODES = {
    "quick": {"n_campaigns": 6, "runs_per_campaign": 32, "rounds": 3},
    "full": {"n_campaigns": 12, "runs_per_campaign": 48, "rounds": 5},
}

PROFILE_INTERVAL = 0.05


def app(params):
    # A few milliseconds of real work per run: long enough that the
    # fleet is execution-bound (as production is) and the plane's fixed
    # costs amortize, short enough that per-event telemetry cost would
    # still show if it were not O(1).  (Real campaign runs are seconds
    # to hours; this is already an aggressively fine granularity.)
    acc = 0
    for i in range(60000):
        acc += i * i
    return acc + params["x"]


def make_manifest(name: str, runs: int):
    camp = Campaign(name, app=AppSpec("bench-app"))
    group = camp.sweep_group("g", nodes=2, walltime=600.0)
    group.add(Sweep([SweepParameter("x", range(runs))]))
    return camp.to_manifest()


async def run_fleet(n_campaigns: int, runs: int, telemetry: bool) -> dict:
    """Drive one fleet; return wall seconds + telemetry evidence."""
    devnull = open(os.devnull, "w")  # noqa: SIM115 - closed in finally
    log = JsonLogSubscriber(stream=devnull)
    service = CampaignService(max_workers=2, max_queue_depth=64,
                              serve_telemetry=telemetry)
    extra = {"profile_interval": PROFILE_INTERVAL} if telemetry else {}
    samples = 0

    def count_samples(event):
        nonlocal samples
        if event.name == "worker.sample":
            samples += 1

    try:
        t0 = time.perf_counter()
        async with service:
            if telemetry:
                log.attach(service.bus)
                service.bus.subscribe(count_samples)
                address = service.telemetry_server.address
            handles = [
                service.submit(
                    make_manifest(f"fleet-{i:02d}", runs),
                    backend="local-threads", app_fn=app,
                    tenant=TENANTS[i % len(TENANTS)], **extra,
                )
                for i in range(n_campaigns)
            ]
            if telemetry:
                # one in-flight scrape per round: exposition is part of
                # the cost being measured
                await asyncio.sleep(0.05)
                scraped = await asyncio.to_thread(
                    lambda: urllib.request.urlopen(
                        address + "/metrics", timeout=5).read()
                )
            await asyncio.gather(*(h.wait() for h in handles))
            elapsed = time.perf_counter() - t0
        evidence = {}
        if telemetry:
            status = service.telemetry.status()
            evidence = {
                "events": status["events"],
                "log_lines": log.lines,
                "worker_samples": samples,
                "scrape_bytes": len(scraped),
            }
        assert all(h.result["g"].all_done for h in handles)
        return {"seconds": elapsed, **evidence}
    finally:
        devnull.close()


def timed_round(n_campaigns: int, runs: int, telemetry: bool) -> dict:
    gc.collect()
    gc.disable()
    try:
        return asyncio.run(run_fleet(n_campaigns, runs, telemetry))
    finally:
        gc.enable()


def run_bench(mode: str) -> dict:
    shape = MODES[mode]
    n, runs, rounds = (shape["n_campaigns"], shape["runs_per_campaign"],
                       shape["rounds"])
    best_off = float("inf")
    best_on = float("inf")
    evidence = {}
    for _ in range(rounds):
        best_off = min(best_off, timed_round(n, runs, telemetry=False)["seconds"])
        on = timed_round(n, runs, telemetry=True)
        if on["seconds"] < best_on:
            best_on = on["seconds"]
            evidence = {k: v for k, v in on.items() if k != "seconds"}

    return {
        "mode": mode,
        "workload": {
            "name": "campaign-service-fleet",
            "n_campaigns": n,
            "runs_per_campaign": runs,
            "tenants": len(TENANTS),
        },
        "protocol": (
            f"gc-disabled best-of-{rounds} per config; off = default "
            "service, on = sampler + HTTP server + JSON log to devnull + "
            f"worker profiler @ {PROFILE_INTERVAL}s + one in-flight "
            "/metrics scrape"
        ),
        "rounds": rounds,
        "off_seconds": best_off,
        "on_seconds": best_on,
        "overhead_pct": (best_on - best_off) / best_off * 100.0,
        "telemetry": evidence,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI shape (4 campaigns)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"where to write the JSON (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    result = run_bench(mode)
    tel = result["telemetry"]
    print(
        f"[{mode}] {result['workload']['n_campaigns']} campaigns: "
        f"off {result['off_seconds']:.3f}s, on {result['on_seconds']:.3f}s "
        f"({result['overhead_pct']:+.2f}%); plane folded {tel['events']} "
        f"events, wrote {tel['log_lines']} log lines, "
        f"{tel['worker_samples']} worker samples"
    )

    output = args.output or DEFAULT_OUTPUT
    output.parent.mkdir(parents=True, exist_ok=True)
    document = {"schema": SCHEMA, "modes": {}}
    if output.exists():
        try:
            existing = json.loads(output.read_text())
            if existing.get("schema") == SCHEMA:
                document = existing
        except (json.JSONDecodeError, OSError):
            pass
    document.setdefault("modes", {})[mode] = result
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"[wrote {output} ({mode} entry)]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
