"""Resilience — completed-runs-per-allocation under injected faults.

Regenerates the recovery comparison: a fault injector (crash-on-start,
mid-run crash, transient I/O, stragglers — all seeded, so every policy
faces the identical schedule) strikes a single-allocation campaign, and
the retry policies compete on how many runs they land per allocation.
The acceptance bar mirrors ISSUE 2: a backoff policy must at least
*double* the no-retry baseline's completed-runs-per-allocation under the
same fault seed.
"""

from repro.experiments import resilience_recovery


def test_resilience_recovery(benchmark, save_result, quick):
    result = benchmark.pedantic(
        resilience_recovery,
        kwargs={"n_tasks": 24, "nodes": 8, "max_allocations": 1},
        rounds=1 if quick else 3,
        iterations=1,
    )
    save_result("resilience_recovery", result.to_text())

    per_alloc = result.extra["per_alloc"]
    # The faults actually bit the baseline (otherwise the ratio is vacuous)...
    assert 0 < per_alloc["no-retry"] < 24
    # ...and a retry policy at least doubles completed-runs-per-allocation.
    assert result.extra["recovery_ratio"] >= 2.0

    # Retries were really granted, and the injector really struck.
    by_policy = {row[0]: row for row in result.rows}
    assert by_policy["no-retry"][5] == 0
    assert by_policy["exp-backoff(3x, 30s base)"][5] > 0
    assert all(row[4] > 0 for row in result.rows)
