"""Figure 5 — collection/selection/forwarding with generated communication.

Paper claims reproduced here: (a) communication components are generated
from data descriptors; (b) selection policies — including ones unknown at
code-generation time — install at runtime through the control channel;
(c) the communication code is reused untouched across policy swaps, so
specialization costs no regeneration; (d) none of this costs throughput.
"""

from repro.experiments import fig5_policies


def test_fig5_dataflow_policies(benchmark, save_result):
    result = benchmark.pedantic(
        fig5_policies, kwargs={"n_items": 5000}, rounds=2, iterations=1
    )
    save_result("fig5_dataflow_policies", result.to_text())
    assert result.extra["reuse_policy_swap"] == 1.0
    assert 0.5 < result.extra["reuse_schema_change"] < 1.0
    assert result.extra["install_latency_items"] <= 5
    by_policy = {row[0]: row for row in result.rows}
    # selection policies deliver their expected volumes
    assert by_policy["forward-all"][2] == 5000
    assert by_policy["sample-every-10"][2] == 500


def test_fig5_forward_all_throughput(benchmark):
    """Raw pipeline throughput with the default policy (items/second)."""
    from repro.dataflow import DataflowGraph, DataScheduler, Sink, Source

    def run():
        g = DataflowGraph("tp")
        src = g.add(Source("s", ({"v": i} for i in range(2000))))
        sched = g.add(DataScheduler("d", subscribers=("out",)))
        sink = g.add(Sink("k"))
        ctrl_ch = g.connect(src, "out", sched, "in")
        from repro.dataflow.channels import Channel

        control = Channel("manual-control")
        sched.bind_input("control", control)
        control.close()
        g.connect(sched, "out", sink, "in")
        g.run()
        return sink

    sink = benchmark(run)
    assert len(sink.received) == 2000


def test_fig5_codegen_cost(benchmark):
    """Generating + materializing both communication components is fast
    enough to do per schema change."""
    from repro.dataflow.codegen import CommunicationCodegen
    from repro.metadata.schema import DataSchema, Field
    from repro.metadata.semantics import DataSemanticsDescriptor, Ordering

    schema = DataSchema(
        "telemetry", "3", tuple(Field(f"f{i}", "float64") for i in range(12))
    )
    semantics = DataSemanticsDescriptor(ordering=Ordering.ORDERED)

    def generate():
        cg = CommunicationCodegen()
        return cg.materialize(cg.generate(schema, semantics))

    classes = benchmark(generate)
    assert len(classes) == 2
